//! Multi-dimensional hierarchical (point) fragmentation of the fact table.
//!
//! A fragmentation `F = {dim₁::level₁, …, dimₘ::levelₘ}` picks at most one
//! hierarchy level per dimension.  With *point* fragmentation every value of
//! every fragmentation attribute forms its own value range, so the number of
//! fragments is simply the product of the fragmentation attributes'
//! cardinalities (§4.1).  Fragments are identified either by their
//! *coordinates* (one attribute value per fragmentation attribute) or by a
//! linear *fragment number* obtained by mixed-radix ranking of the
//! coordinates in the declaration order of the fragmentation attributes —
//! the same "allocation order" the paper uses when placing fragments on disks
//! (first all fragments of month 1, then month 2, …).

use std::fmt;

use serde::{Deserialize, Serialize};

use schema::{AttrRef, LevelRef, StarSchema};

/// Errors raised when constructing a [`Fragmentation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentationError {
    /// Two fragmentation attributes refer to the same dimension.
    DuplicateDimension(usize),
    /// The fragmentation has no attributes.
    Empty,
    /// A textual attribute could not be resolved against the schema.
    Unresolved(String),
}

impl fmt::Display for FragmentationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentationError::DuplicateDimension(d) => {
                write!(f, "dimension {d} appears twice in the fragmentation")
            }
            FragmentationError::Empty => write!(f, "a fragmentation needs at least one attribute"),
            FragmentationError::Unresolved(s) => write!(f, "cannot resolve attribute {s:?}"),
        }
    }
}

impl std::error::Error for FragmentationError {}

/// The coordinates of one fact fragment: one attribute value per
/// fragmentation attribute, in the fragmentation's declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FragmentCoordinates(pub Vec<u64>);

/// An m-dimensional point fragmentation of the fact table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragmentation {
    attrs: Vec<AttrRef>,
    cardinalities: Vec<u64>,
}

impl Fragmentation {
    /// Builds a fragmentation from resolved attribute references.
    ///
    /// The order of `attrs` defines the allocation order: the *last* attribute
    /// varies fastest in the linear fragment numbering, matching Figure 2
    /// where `F_MonthGroup` places all `G` group-fragments of month 1 before
    /// those of month 2.
    pub fn new(schema: &StarSchema, attrs: Vec<AttrRef>) -> Result<Self, FragmentationError> {
        if attrs.is_empty() {
            return Err(FragmentationError::Empty);
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.dimension == a.dimension) {
                return Err(FragmentationError::DuplicateDimension(a.dimension));
            }
        }
        let cardinalities = attrs.iter().map(|a| a.cardinality(schema)).collect();
        Ok(Fragmentation {
            attrs,
            cardinalities,
        })
    }

    /// Builds a fragmentation from `dimension::level` strings, e.g.
    /// `["time::month", "product::group"]`.
    pub fn parse(schema: &StarSchema, specs: &[&str]) -> Result<Self, FragmentationError> {
        let mut attrs = Vec::with_capacity(specs.len());
        for s in specs {
            let level_ref: LevelRef = s
                .parse()
                .map_err(|_| FragmentationError::Unresolved((*s).to_string()))?;
            let attr = level_ref
                .resolve(schema)
                .map_err(|_| FragmentationError::Unresolved((*s).to_string()))?;
            attrs.push(attr);
        }
        Self::new(schema, attrs)
    }

    /// The fragmentation attributes in declaration (allocation) order.
    #[must_use]
    pub fn attrs(&self) -> &[AttrRef] {
        &self.attrs
    }

    /// Number of fragmentation dimensions (the paper's `m`).
    #[must_use]
    pub fn dimensionality(&self) -> usize {
        self.attrs.len()
    }

    /// The cardinality of each fragmentation attribute, in declaration order.
    #[must_use]
    pub fn attr_cardinalities(&self) -> &[u64] {
        &self.cardinalities
    }

    /// Total number of fact fragments: the product of the fragmentation
    /// attributes' cardinalities.
    #[must_use]
    pub fn fragment_count(&self) -> u64 {
        self.cardinalities
            .iter()
            .try_fold(1u64, |acc, &c| acc.checked_mul(c))
            .expect("fragment count overflows u64")
    }

    /// Returns the fragmentation attribute covering `dimension`, if any.
    #[must_use]
    pub fn attr_for_dimension(&self, dimension: usize) -> Option<AttrRef> {
        self.attrs
            .iter()
            .copied()
            .find(|a| a.dimension == dimension)
    }

    /// True if `dimension` is a fragmentation dimension.
    #[must_use]
    pub fn covers_dimension(&self, dimension: usize) -> bool {
        self.attr_for_dimension(dimension).is_some()
    }

    /// Converts fragment coordinates into the linear fragment number
    /// (mixed-radix ranking, last attribute fastest).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates have the wrong arity or a value exceeds its
    /// attribute's cardinality.
    #[must_use]
    pub fn fragment_number(&self, coords: &FragmentCoordinates) -> u64 {
        assert_eq!(
            coords.0.len(),
            self.attrs.len(),
            "coordinate arity mismatch"
        );
        let mut number = 0u64;
        for (value, &card) in coords.0.iter().zip(&self.cardinalities) {
            assert!(*value < card, "coordinate {value} out of range (< {card})");
            number = number * card + value;
        }
        number
    }

    /// Converts a linear fragment number back into coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the number is out of range.
    #[must_use]
    pub fn coordinates(&self, fragment_number: u64) -> FragmentCoordinates {
        assert!(
            fragment_number < self.fragment_count(),
            "fragment number {fragment_number} out of range"
        );
        let mut values = vec![0u64; self.attrs.len()];
        let mut rest = fragment_number;
        for i in (0..self.attrs.len()).rev() {
            values[i] = rest % self.cardinalities[i];
            rest /= self.cardinalities[i];
        }
        FragmentCoordinates(values)
    }

    /// The fragment a fact row belongs to, given the row's leaf-level keys
    /// (one per schema dimension, in schema dimension order).
    #[must_use]
    pub fn fragment_of_row(&self, schema: &StarSchema, leaf_keys: &[u64]) -> u64 {
        assert_eq!(
            leaf_keys.len(),
            schema.dimension_count(),
            "one leaf key per dimension required"
        );
        let coords = FragmentCoordinates(
            self.attrs
                .iter()
                .map(|a| {
                    let hierarchy = schema.dimensions()[a.dimension].hierarchy();
                    hierarchy.ancestor_of_leaf(leaf_keys[a.dimension], a.level)
                })
                .collect(),
        );
        self.fragment_number(&coords)
    }

    /// Average number of fact rows per fragment (uniform-distribution
    /// assumption of the paper).
    #[must_use]
    pub fn rows_per_fragment(&self, schema: &StarSchema) -> f64 {
        schema.fact_row_count() as f64 / self.fragment_count() as f64
    }

    /// Human-readable rendering, e.g. `{time::month, product::group}`.
    #[must_use]
    pub fn describe(&self, schema: &StarSchema) -> String {
        let parts: Vec<String> = self.attrs.iter().map(|a| a.display(schema)).collect();
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::{apb1_scaled_down, apb1_schema};

    fn month_group(schema: &StarSchema) -> Fragmentation {
        Fragmentation::parse(schema, &["time::month", "product::group"]).unwrap()
    }

    #[test]
    fn fragment_counts_match_paper() {
        let s = apb1_schema();
        // F_MonthGroup: 24 × 480 = 11 520 fragments (§4.1).
        assert_eq!(month_group(&s).fragment_count(), 11_520);
        // F_MonthClass and F_MonthCode from Table 6.
        let mc = Fragmentation::parse(&s, &["time::month", "product::class"]).unwrap();
        assert_eq!(mc.fragment_count(), 23_040);
        let mcode = Fragmentation::parse(&s, &["time::month", "product::code"]).unwrap();
        assert_eq!(mcode.fragment_count(), 345_600);
        // The finest possible fragmentation has more fragments than fact rows
        // (§4.4: ~7.5 billion).
        let finest = Fragmentation::parse(
            &s,
            &[
                "time::month",
                "product::code",
                "customer::store",
                "channel::channel",
            ],
        )
        .unwrap();
        assert_eq!(finest.fragment_count(), 7_464_960_000);
        assert!(finest.fragment_count() > s.fact_row_count());
        // The four-dimensional quarter/group/retailer/channel variant: ~9 M.
        let coarse4 = Fragmentation::parse(
            &s,
            &[
                "time::quarter",
                "product::group",
                "customer::retailer",
                "channel::channel",
            ],
        )
        .unwrap();
        assert_eq!(coarse4.fragment_count(), 8 * 480 * 144 * 15);
    }

    #[test]
    fn allocation_order_matches_figure_2() {
        // Figure 2: for F_MonthGroup the G fragments of month 1 come first,
        // then the G fragments of month 2, etc.
        let s = apb1_schema();
        let f = month_group(&s);
        assert_eq!(f.fragment_number(&FragmentCoordinates(vec![0, 0])), 0);
        assert_eq!(f.fragment_number(&FragmentCoordinates(vec![0, 479])), 479);
        assert_eq!(f.fragment_number(&FragmentCoordinates(vec![1, 0])), 480);
        assert_eq!(
            f.fragment_number(&FragmentCoordinates(vec![23, 479])),
            11_519
        );
    }

    #[test]
    fn coordinates_roundtrip() {
        let s = apb1_schema();
        let f = month_group(&s);
        for number in [0u64, 1, 479, 480, 5_000, 11_519] {
            let coords = f.coordinates(number);
            assert_eq!(f.fragment_number(&coords), number);
        }
    }

    #[test]
    fn fragment_of_row_uses_hierarchy_ancestors() {
        let s = apb1_schema();
        let f = month_group(&s);
        // Dimension order in the APB-1 schema: product, customer, channel, time.
        // A row with product code 35 (group 1) in month 2 maps to fragment
        // month*480 + group = 2*480 + 1.
        let keys = vec![35u64, 0, 0, 2];
        assert_eq!(f.fragment_of_row(&s, &keys), 2 * 480 + 1);
        // Product code 0 (group 0), month 0 → fragment 0.
        assert_eq!(f.fragment_of_row(&s, &[0, 10, 3, 0]), 0);
    }

    #[test]
    fn rows_per_fragment_for_month_group() {
        let s = apb1_schema();
        let f = month_group(&s);
        // 1 866 240 000 / 11 520 = 162 000 rows per fragment.
        assert!((f.rows_per_fragment(&s) - 162_000.0).abs() < 1e-6);
    }

    #[test]
    fn accessors_and_description() {
        let s = apb1_schema();
        let f = month_group(&s);
        assert_eq!(f.dimensionality(), 2);
        assert_eq!(f.attr_cardinalities(), &[24, 480]);
        assert_eq!(f.describe(&s), "{time::month, product::group}");
        let time = s.dimension_index("time").unwrap();
        let product = s.dimension_index("product").unwrap();
        let customer = s.dimension_index("customer").unwrap();
        assert!(f.covers_dimension(time));
        assert!(f.covers_dimension(product));
        assert!(!f.covers_dimension(customer));
        assert_eq!(
            f.attr_for_dimension(product),
            Some(s.attr("product", "group").unwrap())
        );
        assert_eq!(f.attr_for_dimension(customer), None);
    }

    #[test]
    fn construction_errors() {
        let s = apb1_schema();
        assert_eq!(
            Fragmentation::parse(&s, &[]).unwrap_err(),
            FragmentationError::Empty
        );
        let product = s.dimension_index("product").unwrap();
        assert_eq!(
            Fragmentation::parse(&s, &["product::group", "product::code"]).unwrap_err(),
            FragmentationError::DuplicateDimension(product)
        );
        assert!(matches!(
            Fragmentation::parse(&s, &["product::week"]).unwrap_err(),
            FragmentationError::Unresolved(_)
        ));
        assert!(matches!(
            Fragmentation::parse(&s, &["nonsense"]).unwrap_err(),
            FragmentationError::Unresolved(_)
        ));
        // Errors render usefully.
        assert!(!FragmentationError::Empty.to_string().is_empty());
    }

    #[test]
    fn works_on_scaled_schema() {
        let s = apb1_scaled_down();
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        assert_eq!(
            f.fragment_count(),
            12 * s.attr("product", "group").unwrap().cardinality(&s)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fragment_number_panics() {
        let s = apb1_schema();
        let f = month_group(&s);
        let _ = f.coordinates(f.fragment_count());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let s = apb1_schema();
        let f = month_group(&s);
        let _ = f.fragment_number(&FragmentCoordinates(vec![1]));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use schema::apb1::apb1_scaled_down;

    proptest! {
        /// Fragment numbering is a bijection between coordinates and
        /// 0..fragment_count.
        #[test]
        fn prop_numbering_roundtrip(seed in 0u64..1_000_000) {
            let s = apb1_scaled_down();
            let f = Fragmentation::parse(&s, &["time::quarter", "product::group", "channel::channel"]).unwrap();
            let number = seed % f.fragment_count();
            let coords = f.coordinates(number);
            prop_assert_eq!(f.fragment_number(&coords), number);
        }

        /// Every fact row maps into a valid fragment, and rows agreeing on all
        /// fragmentation-attribute ancestors map to the same fragment.
        #[test]
        fn prop_row_mapping_total(
            product in 0u64..120,
            store in 0u64..40,
            chan in 0u64..3,
            month in 0u64..12,
        ) {
            let s = apb1_scaled_down();
            let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
            let keys = vec![product, store, chan, month];
            let frag = f.fragment_of_row(&s, &keys);
            prop_assert!(frag < f.fragment_count());
            // Changing only non-fragmentation dimensions keeps the fragment.
            let other_keys = vec![product, (store + 1) % 40, (chan + 1) % 3, month];
            prop_assert_eq!(f.fragment_of_row(&s, &other_keys), frag);
        }
    }
}
