//! `mdhf` — Multi-Dimensional Hierarchical Fragmentation for star schemas.
//!
//! This crate implements the primary contribution of *Stöhr, Märtens, Rahm:
//! "Multi-Dimensional Database Allocation for Parallel Data Warehouses"*
//! (VLDB 2000):
//!
//! * [`fragmentation::Fragmentation`] — an m-dimensional *point*
//!   fragmentation `F = {dim₁::level₁, …, dimₘ::levelₘ}` of the fact table,
//!   with the mapping between fragment numbers, fragment coordinates and fact
//!   rows (§4.1),
//! * [`query::StarQuery`] — the query model: exact-match selections on
//!   hierarchy attributes with aggregation over the fact table (§3),
//! * [`classify()`] — the query types **Q1–Q4** and I/O classes
//!   **IOC1 / IOC1-opt / IOC2 / IOC2-nosupp**, the set of fragments a query
//!   must process, and the bitmaps it still needs (§4.2, §4.5),
//! * [`thresholds`] — the fragmentation thresholds of §4.4, most importantly
//!   `n_max = N / (8 · PgSize · PrefetchGran)`,
//! * [`enumerate`] — enumeration of all candidate fragmentations of a schema
//!   and the Table 2 census under size constraints,
//! * [`cost`] — the analytic I/O cost model (re-derivation of the paper's
//!   companion report; validated against Table 3),
//! * [`advisor`] — the §4.7 guidelines packaged as a fragmentation advisor
//!   that ranks candidate fragmentations for a weighted query mix.
//!
//! # Quick start
//!
//! ```
//! use mdhf::{classify, Fragmentation, StarQuery};
//!
//! let schema = schema::apb1::apb1_schema();
//! let fragmentation =
//!     Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
//! assert_eq!(fragmentation.fragment_count(), 11_520);
//!
//! // The §3.1 sample query matches both fragmentation attributes exactly:
//! // a Q1 query processing a single fragment.
//! let query = StarQuery::exact_match(&schema, "1MONTH1GROUP",
//!                                    &["time::month", "product::group"]);
//! let classification = classify(&schema, &fragmentation, &query);
//! assert_eq!(classification.fragments_to_process, 1);
//! ```

#![forbid(unsafe_code)]

pub mod advisor;
pub mod classify;
pub mod cost;
pub mod enumerate;
pub mod fragmentation;
pub mod query;
pub mod thresholds;

pub use advisor::{Advisor, AdvisorConfig, RankedFragmentation};
pub use classify::{classify, BitmapRequirement, Classification, IoClass, QueryClass};
pub use cost::{CostModel, CostParameters, MultiUserEstimate, QueryIoCost};
pub use enumerate::{enumerate_fragmentations, table2_census, Table2Row};
pub use fragmentation::{FragmentCoordinates, Fragmentation, FragmentationError};
pub use query::{Predicate, StarQuery};
pub use thresholds::{check_fragmentation, FragmentationConstraints, ThresholdReport};
