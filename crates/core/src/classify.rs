//! Query classification under a fragmentation (§4.2, §4.5).
//!
//! Given a [`StarQuery`] and a [`Fragmentation`], this module determines:
//!
//! * the **query type** Q1–Q4 (or *unsupported*) of §4.2,
//! * the **I/O class** IOC1 / IOC1-opt / IOC2 / IOC2-nosupp of §4.5,
//! * the expected **number of fragments** the query must process,
//! * the **bitmap requirements**: for which query attributes bitmap access is
//!   still necessary (step 2 of the processing algorithm in §4.3).
//!
//! Terminology note: the paper's `hier(·)` calls coarser levels "higher".  In
//! this code base level indices grow towards *finer* levels (0 = coarsest), so
//! "q is at or above the fragmentation attribute" translates to
//! `q.level <= f.level`.

use serde::{Deserialize, Serialize};

use schema::{AttrRef, StarSchema};

use crate::fragmentation::Fragmentation;
use crate::query::StarQuery;

/// The paper's query types with respect to a fragmentation (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryClass {
    /// Q1 — all referenced fragmentation-dimension attributes are exactly the
    /// fragmentation attributes.
    Q1,
    /// Q2 — attributes below (finer than) the fragmentation attributes.
    Q2,
    /// Q3 — attributes above (coarser than) the fragmentation attributes.
    Q3,
    /// Q4 — a mix of finer and coarser attributes.
    Q4,
    /// The query references no fragmentation dimension at all.
    Unsupported,
}

/// The paper's I/O overhead classes (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoClass {
    /// IOC1-opt — exactly one fragment, no bitmap access.
    Ioc1Opt,
    /// IOC1 — clustered hits, no bitmap access.
    Ioc1,
    /// IOC2 — spread hits, bitmap I/O required.
    Ioc2,
    /// IOC2-nosupp — no fragmentation support; all fragments processed.
    Ioc2NoSupp,
}

impl IoClass {
    /// True for the two classes that avoid bitmap access entirely.
    #[must_use]
    pub fn avoids_bitmaps(self) -> bool {
        matches!(self, IoClass::Ioc1 | IoClass::Ioc1Opt)
    }
}

/// A query attribute that still needs bitmap access, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapRequirement {
    /// The query attribute.
    pub attr: AttrRef,
    /// True if the attribute's dimension is not a fragmentation dimension;
    /// false if it is, but at a coarser fragmentation level than the query
    /// attribute (so only a subset of each fragment's rows is relevant).
    pub dimension_unfragmented: bool,
}

/// The result of classifying a query under a fragmentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// Query type Q1–Q4 / unsupported.
    pub query_class: QueryClass,
    /// I/O overhead class.
    pub io_class: IoClass,
    /// Expected number of fact fragments that must be processed.
    pub fragments_to_process: u64,
    /// Query attributes that require bitmap access.
    pub bitmap_requirements: Vec<BitmapRequirement>,
}

impl Classification {
    /// True if no bitmap at all has to be read for this query.
    #[must_use]
    pub fn needs_no_bitmaps(&self) -> bool {
        self.bitmap_requirements.is_empty()
    }
}

/// Classifies `query` under `fragmentation` for `schema`.
#[must_use]
pub fn classify(
    schema: &StarSchema,
    fragmentation: &Fragmentation,
    query: &StarQuery,
) -> Classification {
    let mut any_equal = false;
    let mut any_finer = false;
    let mut any_coarser = false;
    let mut references_frag_dim = false;

    // Fragments to process: product over fragmentation attributes of the
    // per-dimension reduction factor (§4.2's counting argument).
    let mut fragments: f64 = 1.0;
    for frag_attr in fragmentation.attrs() {
        let card_f = frag_attr.cardinality(schema) as f64;
        match query.predicate_on(frag_attr.dimension) {
            None => {
                // Dimension not referenced: all its fragment values remain.
                fragments *= card_f;
            }
            Some(pred) => {
                references_frag_dim = true;
                let q = pred.attr;
                if q.level == frag_attr.level {
                    any_equal = true;
                    // Exactly the selected values' fragments remain.
                    fragments *= pred.values_selected as f64;
                } else if q.level > frag_attr.level {
                    // Query attribute is finer: each selected value lies in
                    // exactly one fragment value.
                    any_finer = true;
                    fragments *= pred.values_selected as f64;
                } else {
                    // Query attribute is coarser: each selected value covers
                    // card(f)/card(q) fragment values (e.g. one quarter →
                    // three month-fragments).
                    any_coarser = true;
                    let card_q = q.cardinality(schema) as f64;
                    fragments *= pred.values_selected as f64 * (card_f / card_q);
                }
            }
        }
    }
    let fragments_to_process = (fragments.round() as u64).clamp(1, fragmentation.fragment_count());

    let query_class = if !references_frag_dim {
        QueryClass::Unsupported
    } else if any_finer && any_coarser {
        QueryClass::Q4
    } else if any_finer {
        QueryClass::Q2
    } else if any_coarser {
        QueryClass::Q3
    } else {
        debug_assert!(any_equal);
        QueryClass::Q1
    };

    // Bitmap requirements (§4.3, step 2): bitmap access is needed for a query
    // attribute q iff its dimension is not in F, or it is in F but the
    // fragmentation attribute sits at a coarser level than q.
    let mut bitmap_requirements = Vec::new();
    for pred in query.predicates() {
        match fragmentation.attr_for_dimension(pred.attr.dimension) {
            None => bitmap_requirements.push(BitmapRequirement {
                attr: pred.attr,
                dimension_unfragmented: true,
            }),
            Some(frag_attr) => {
                if pred.attr.level > frag_attr.level {
                    bitmap_requirements.push(BitmapRequirement {
                        attr: pred.attr,
                        dimension_unfragmented: false,
                    });
                }
            }
        }
    }

    // I/O class (§4.5).
    let dims_subset_of_f = query
        .predicates()
        .iter()
        .all(|p| fragmentation.covers_dimension(p.attr.dimension));
    let all_at_or_above = query.predicates().iter().all(|p| {
        fragmentation
            .attr_for_dimension(p.attr.dimension)
            .is_some_and(|f| p.attr.level <= f.level)
    });
    let io_class = if !references_frag_dim {
        IoClass::Ioc2NoSupp
    } else if dims_subset_of_f && all_at_or_above {
        // IOC1: no bitmap access, hits clustered in complete fragments.
        let dims_equal_f = query.predicates().len() == fragmentation.dimensionality();
        let all_equal = query.predicates().iter().all(|p| {
            fragmentation
                .attr_for_dimension(p.attr.dimension)
                .is_some_and(|f| p.attr.level == f.level)
        });
        if dims_equal_f && all_equal {
            IoClass::Ioc1Opt
        } else {
            IoClass::Ioc1
        }
    } else {
        IoClass::Ioc2
    };

    Classification {
        query_class,
        io_class,
        fragments_to_process,
        bitmap_requirements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn month_group(schema: &StarSchema) -> Fragmentation {
        Fragmentation::parse(schema, &["time::month", "product::group"]).unwrap()
    }

    #[test]
    fn q1_exact_match_on_all_fragmentation_attributes() {
        // §4.2 Q1: 1MONTH1GROUP under F_MonthGroup → exactly 1 fragment,
        // no bitmaps.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1MONTH1GROUP", &["time::month", "product::group"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q1);
        assert_eq!(c.io_class, IoClass::Ioc1Opt);
        assert_eq!(c.fragments_to_process, 1);
        assert!(c.needs_no_bitmaps());
    }

    #[test]
    fn q1_subset_of_fragmentation_attributes() {
        // §4.2 Q1 subset case: aggregate one GROUP over all 24 months →
        // 24 fragments, still no bitmap for the query attribute.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1GROUP", &["product::group"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q1);
        assert_eq!(c.io_class, IoClass::Ioc1);
        assert_eq!(c.fragments_to_process, 24);
        assert!(c.needs_no_bitmaps());
    }

    #[test]
    fn q1_with_additional_unfragmented_dimension() {
        // §4.2: "to aggregate over 1 product GROUP and 1 STORE we have to
        // process 24 fact fragments but can use a bitmap index on CUSTOMER".
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1GROUP1STORE", &["product::group", "customer::store"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.fragments_to_process, 24);
        assert_eq!(c.io_class, IoClass::Ioc2);
        assert_eq!(c.bitmap_requirements.len(), 1);
        assert!(c.bitmap_requirements[0].dimension_unfragmented);
        assert_eq!(
            c.bitmap_requirements[0].attr,
            s.attr("customer", "store").unwrap()
        );
    }

    #[test]
    fn q2_lower_level_attributes() {
        // §4.2 Q2: 1CODE1MONTH under F_MonthGroup → 1 fragment, bitmap needed
        // for the product code.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1CODE1MONTH", &["product::code", "time::month"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q2);
        assert_eq!(c.fragments_to_process, 1);
        assert_eq!(c.io_class, IoClass::Ioc2);
        assert_eq!(c.bitmap_requirements.len(), 1);
        assert!(!c.bitmap_requirements[0].dimension_unfragmented);

        // 1CODE alone → 24 fragments (one per month).
        let q = StarQuery::exact_match(&s, "1CODE", &["product::code"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q2);
        assert_eq!(c.fragments_to_process, 24);
    }

    #[test]
    fn q3_higher_level_attributes() {
        // §4.2 Q3: aggregate a GROUP over a QUARTER → 3 fragments; aggregate
        // one QUARTER over all groups → 1440 fragments (one eighth of all).
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1GROUP1QUARTER", &["product::group", "time::quarter"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q3);
        assert_eq!(c.fragments_to_process, 3);
        assert_eq!(c.io_class, IoClass::Ioc1);
        assert!(c.needs_no_bitmaps());

        let q = StarQuery::exact_match(&s, "1QUARTER", &["time::quarter"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q3);
        assert_eq!(c.fragments_to_process, 480 * 3);
        assert_eq!(c.fragments_to_process, 11_520 / 8);
        assert!(c.needs_no_bitmaps());
    }

    #[test]
    fn q4_mixed_levels() {
        // §4.2 Q4: 1CODE1QUARTER under F_MonthGroup → 3 fragments, bitmap
        // needed for the code but not the quarter.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1CODE1QUARTER", &["product::code", "time::quarter"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q4);
        assert_eq!(c.fragments_to_process, 3);
        assert_eq!(c.io_class, IoClass::Ioc2);
        assert_eq!(c.bitmap_requirements.len(), 1);
        assert_eq!(
            c.bitmap_requirements[0].attr,
            s.attr("product", "code").unwrap()
        );
    }

    #[test]
    fn unsupported_query_touches_all_fragments() {
        // §4.5 IOC2-nosupp: 1STORE under F_MonthGroup.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1STORE", &["customer::store"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Unsupported);
        assert_eq!(c.io_class, IoClass::Ioc2NoSupp);
        assert_eq!(c.fragments_to_process, 11_520);
        assert_eq!(c.bitmap_requirements.len(), 1);
        assert!(!c.io_class.avoids_bitmaps());
    }

    #[test]
    fn one_store_under_its_own_fragmentation_is_optimal() {
        // Table 3: F_opt = {customer::store} makes 1STORE an IOC1-opt query.
        let s = apb1_schema();
        let f = Fragmentation::parse(&s, &["customer::store"]).unwrap();
        let q = StarQuery::exact_match(&s, "1STORE", &["customer::store"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.io_class, IoClass::Ioc1Opt);
        assert_eq!(c.fragments_to_process, 1);
        assert!(c.needs_no_bitmaps());
        assert!(c.io_class.avoids_bitmaps());
    }

    #[test]
    fn one_month_under_month_group_is_cpu_bound_case() {
        // §6.1: 1MONTH under F_MonthGroup is confined to the 480 fragments of
        // the selected month and needs no bitmaps.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1MONTH", &["time::month"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q1);
        assert_eq!(c.io_class, IoClass::Ioc1);
        assert_eq!(c.fragments_to_process, 480);
        assert!(c.needs_no_bitmaps());
    }

    #[test]
    fn year_query_covers_half_the_fragments() {
        let s = apb1_schema();
        let f = month_group(&s);
        let q = StarQuery::exact_match(&s, "1YEAR", &["time::year"]);
        let c = classify(&s, &f, &q);
        assert_eq!(c.query_class, QueryClass::Q3);
        // One year = 12 months × 480 groups = 5 760 fragments.
        assert_eq!(c.fragments_to_process, 5_760);
    }

    #[test]
    fn in_list_predicates_scale_fragment_counts() {
        let s = apb1_schema();
        let f = month_group(&s);
        let month = s.attr("time", "month").unwrap();
        let group = s.attr("product", "group").unwrap();
        let q = StarQuery::new(
            "3MONTH2GROUP",
            vec![Predicate::in_list(month, 3), Predicate::in_list(group, 2)],
        );
        let c = classify(&s, &f, &q);
        assert_eq!(c.fragments_to_process, 6);
        assert_eq!(c.query_class, QueryClass::Q1);
    }

    #[test]
    fn fragment_count_never_exceeds_total() {
        let s = apb1_schema();
        let f = month_group(&s);
        let month = s.attr("time", "month").unwrap();
        // Selecting more months than exist still caps at the total fragments.
        let q = StarQuery::new("ALLMONTHS", vec![Predicate::in_list(month, 100)]);
        let c = classify(&s, &f, &q);
        assert!(c.fragments_to_process <= f.fragment_count());
    }

    use crate::query::Predicate;
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use schema::apb1::apb1_schema;

    /// Builds a fragmentation / query from per-dimension optional level seeds
    /// (None = dimension not used; Some(seed) = level `seed % depth`).
    fn attrs_from_seeds(schema: &StarSchema, seeds: &[Option<usize>]) -> Vec<AttrRef> {
        seeds
            .iter()
            .enumerate()
            .filter_map(|(d, l)| {
                l.map(|level| {
                    let depth = schema.dimensions()[d].hierarchy().depth();
                    AttrRef::new(d, level % depth)
                })
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The number of fragments to process is always between 1 and the
        /// total fragment count, equals the total for unsupported queries,
        /// and bitmap requirements are consistent with the fragmentation.
        #[test]
        fn prop_classification_invariants(
            frag_seeds in proptest::collection::vec(proptest::option::of(0usize..6), 4),
            query_seeds in proptest::collection::vec(proptest::option::of(0usize..6), 4),
        ) {
            let schema = apb1_schema();
            let frag_attrs = attrs_from_seeds(&schema, &frag_seeds);
            prop_assume!(!frag_attrs.is_empty());
            let f = Fragmentation::new(&schema, frag_attrs).unwrap();
            let q = StarQuery::new("prop", attrs_from_seeds(&schema, &query_seeds)
                .into_iter()
                .map(crate::query::Predicate::exact)
                .collect());

            let c = classify(&schema, &f, &q);
            prop_assert!(c.fragments_to_process >= 1);
            prop_assert!(c.fragments_to_process <= f.fragment_count());
            if c.query_class == QueryClass::Unsupported {
                prop_assert_eq!(c.fragments_to_process, f.fragment_count());
                prop_assert_eq!(c.io_class, IoClass::Ioc2NoSupp);
            }
            if c.io_class.avoids_bitmaps() {
                prop_assert!(c.needs_no_bitmaps());
            }
            for req in &c.bitmap_requirements {
                match f.attr_for_dimension(req.attr.dimension) {
                    None => prop_assert!(req.dimension_unfragmented),
                    Some(fa) => prop_assert!(req.attr.level > fa.level),
                }
            }
        }

        /// Monotonicity: a query referencing strictly more fragmentation
        /// dimensions never processes more fragments than one referencing a
        /// subset of them.
        #[test]
        fn prop_more_predicates_never_more_fragments(
            frag_seeds in proptest::collection::vec(0usize..6, 4),
            query_seeds in proptest::collection::vec(proptest::option::of(0usize..6), 4),
        ) {
            let schema = apb1_schema();
            let frag_attrs = attrs_from_seeds(
                &schema,
                &frag_seeds.iter().map(|&s| Some(s)).collect::<Vec<_>>(),
            );
            let f = Fragmentation::new(&schema, frag_attrs).unwrap();
            let preds = attrs_from_seeds(&schema, &query_seeds);
            let subset_query = StarQuery::new(
                "subset",
                preds.iter().skip(1).copied().map(crate::query::Predicate::exact).collect(),
            );
            let full_query = StarQuery::new(
                "full",
                preds.iter().copied().map(crate::query::Predicate::exact).collect(),
            );
            let c_subset = classify(&schema, &f, &subset_query);
            let c_full = classify(&schema, &f, &full_query);
            prop_assert!(c_full.fragments_to_process <= c_subset.fragments_to_process);
        }
    }
}
