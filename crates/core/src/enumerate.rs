//! Enumeration of candidate fragmentations and the Table 2 census.
//!
//! For a star schema with dimensions `D₁…D_k` having `h_i` hierarchy levels
//! each, the candidate point fragmentations are all non-empty choices of a
//! subset of dimensions together with one level per chosen dimension.  For
//! APB-1 (6 + 2 + 3 + 1 levels) this yields 12 one-dimensional, 47
//! two-dimensional, 72 three-dimensional and 36 four-dimensional options —
//! 167 in total, which Table 2 then filters by minimum bitmap-fragment size.

use serde::{Deserialize, Serialize};

use schema::{AttrRef, PageSizing, StarSchema};

use crate::fragmentation::Fragmentation;

/// Enumerates every candidate point fragmentation of `schema`, grouped by
/// nothing in particular (ascending dimensionality, then lexicographic).
#[must_use]
pub fn enumerate_fragmentations(schema: &StarSchema) -> Vec<Fragmentation> {
    let dims = schema.dimension_count();
    let mut out = Vec::new();
    // Iterate over all non-empty dimension subsets via bitmask, then over the
    // cartesian product of level choices for the chosen dimensions.
    for mask in 1u32..(1u32 << dims) {
        let chosen: Vec<usize> = (0..dims).filter(|d| mask & (1 << d) != 0).collect();
        let depths: Vec<usize> = chosen
            .iter()
            .map(|&d| schema.dimensions()[d].hierarchy().depth())
            .collect();
        let mut levels = vec![0usize; chosen.len()];
        loop {
            let attrs: Vec<AttrRef> = chosen
                .iter()
                .zip(&levels)
                .map(|(&d, &l)| AttrRef::new(d, l))
                .collect();
            out.push(
                Fragmentation::new(schema, attrs).expect("enumerated attrs are valid and unique"),
            );
            // Advance the mixed-radix level counter.
            let mut i = 0;
            loop {
                if i == levels.len() {
                    break;
                }
                levels[i] += 1;
                if levels[i] < depths[i] {
                    break;
                }
                levels[i] = 0;
                i += 1;
            }
            if i == levels.len() {
                break;
            }
        }
    }
    out.sort_by_key(|f| (f.dimensionality(), f.fragment_count()));
    out
}

/// One row of Table 2: for a given fragmentation dimensionality, how many
/// candidate fragmentations satisfy each minimum bitmap-fragment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Number of fragmentation dimensions (1–4 for APB-1).
    pub dimensions: usize,
    /// Candidates with no size constraint.
    pub any: usize,
    /// Candidates with bitmap fragments of at least 1 page.
    pub at_least_1_page: usize,
    /// Candidates with bitmap fragments of at least 4 pages.
    pub at_least_4_pages: usize,
    /// Candidates with bitmap fragments of at least 8 pages.
    pub at_least_8_pages: usize,
}

/// Computes the Table 2 census for `schema`: candidate counts per
/// dimensionality under minimum bitmap-fragment-size constraints, plus a
/// final "total" row (`dimensions == 0` marks the total).
#[must_use]
pub fn table2_census(schema: &StarSchema) -> Vec<Table2Row> {
    let sizing = PageSizing::new(schema);
    let candidates = enumerate_fragmentations(schema);
    let max_dims = schema.dimension_count();
    let mut rows = Vec::new();
    let mut totals = Table2Row {
        dimensions: 0,
        any: 0,
        at_least_1_page: 0,
        at_least_4_pages: 0,
        at_least_8_pages: 0,
    };
    for m in 1..=max_dims {
        let mut row = Table2Row {
            dimensions: m,
            any: 0,
            at_least_1_page: 0,
            at_least_4_pages: 0,
            at_least_8_pages: 0,
        };
        for f in candidates.iter().filter(|f| f.dimensionality() == m) {
            let pages = sizing.bitmap_fragment_pages(f.fragment_count());
            row.any += 1;
            if pages >= 1.0 {
                row.at_least_1_page += 1;
            }
            if pages >= 4.0 {
                row.at_least_4_pages += 1;
            }
            if pages >= 8.0 {
                row.at_least_8_pages += 1;
            }
        }
        totals.any += row.any;
        totals.at_least_1_page += row.at_least_1_page;
        totals.at_least_4_pages += row.at_least_4_pages;
        totals.at_least_8_pages += row.at_least_8_pages;
        rows.push(row);
    }
    rows.push(totals);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn enumeration_counts_by_dimensionality() {
        // "For our sample schema, there are 168 possible fragmentations"
        // (the table itself sums to 167: 12 + 47 + 72 + 36).
        let s = apb1_schema();
        let all = enumerate_fragmentations(&s);
        let count = |m: usize| all.iter().filter(|f| f.dimensionality() == m).count();
        assert_eq!(count(1), 12);
        assert_eq!(count(2), 47);
        assert_eq!(count(3), 72);
        assert_eq!(count(4), 36);
        assert_eq!(all.len(), 167);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let s = apb1_schema();
        let all = enumerate_fragmentations(&s);
        let mut keys: Vec<Vec<(usize, usize)>> = all
            .iter()
            .map(|f| {
                let mut attrs: Vec<(usize, usize)> =
                    f.attrs().iter().map(|a| (a.dimension, a.level)).collect();
                attrs.sort_unstable();
                attrs
            })
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn table_2_census_matches_paper_shape() {
        // Table 2 of the paper:
        //   dims | any | ≥1 page | ≥4 pages | ≥8 pages
        //    1   |  12 |   12    |    12    |   11
        //    2   |  47 |   37    |    31    |   27
        //    3   |  72 |   22    |    13    |    9
        //    4   |  36 |    1    |     –    |    –
        //  total | 167 |   72    |    56    |   47
        //
        // The unconstrained column is pure combinatorics and must match
        // exactly.  The constrained columns depend on how the authors rounded
        // fractional page sizes at the thresholds (e.g. product::code gives
        // 3.955-page bitmap fragments, which the paper counts as "≥ 4
        // pages"); we use exact fractional sizes and therefore allow a small
        // tolerance around the published counts.
        let s = apb1_schema();
        let rows = table2_census(&s);
        assert_eq!(rows.len(), 5);
        let by_dim = |d: usize| *rows.iter().find(|r| r.dimensions == d).unwrap();
        // Per-dimensionality rows stay within ±3 of the published counts; the
        // total row accumulates those rounding differences, so allow ±6.
        let close = |actual: usize, paper: usize, dims: usize| {
            (actual as i64 - paper as i64).abs() <= if dims == 0 { 6 } else { 3 }
        };

        let paper = [
            (1usize, 12usize, 12usize, 12usize, 11usize),
            (2, 47, 37, 31, 27),
            (3, 72, 22, 13, 9),
            (4, 36, 1, 0, 0),
            (0, 167, 72, 56, 47),
        ];
        for (dims, any, p1, p4, p8) in paper {
            let row = by_dim(dims);
            assert_eq!(row.any, any, "dims {dims}: unconstrained count");
            assert!(close(row.at_least_1_page, p1, dims), "dims {dims}: {row:?}");
            assert!(
                close(row.at_least_4_pages, p4, dims),
                "dims {dims}: {row:?}"
            );
            assert!(
                close(row.at_least_8_pages, p8, dims),
                "dims {dims}: {row:?}"
            );
        }
        // The qualitative message of Table 2 holds exactly: the constraint
        // removes ~½ to ~¾ of the options, and of the 36 four-dimensional
        // candidates at most one survives even the 1-page constraint.
        let total = by_dim(0);
        assert!(total.at_least_1_page * 2 <= total.any + 3);
        assert!(total.at_least_8_pages * 4 >= total.any - 20);
        assert!(by_dim(4).at_least_1_page <= 1);
        assert_eq!(by_dim(4).at_least_4_pages, 0);
    }

    #[test]
    fn census_columns_are_monotone() {
        let s = apb1_schema();
        for row in table2_census(&s) {
            assert!(row.any >= row.at_least_1_page);
            assert!(row.at_least_1_page >= row.at_least_4_pages);
            assert!(row.at_least_4_pages >= row.at_least_8_pages);
        }
    }

    #[test]
    fn enumeration_is_sorted_by_dimensionality_then_size() {
        let s = apb1_schema();
        let all = enumerate_fragmentations(&s);
        for pair in all.windows(2) {
            let key = |f: &Fragmentation| (f.dimensionality(), f.fragment_count());
            assert!(key(&pair[0]) <= key(&pair[1]));
        }
    }
}
