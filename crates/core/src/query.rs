//! The star-query model.
//!
//! The paper considers star queries that aggregate fact-table measures under
//! exact-match selections on hierarchy attributes of one or more dimensions,
//! e.g. `1MONTH1GROUP`: sum of `UnitsSold`/`DollarSales` for one product group
//! within one month.  [`StarQuery`] captures the *shape* of such a query — the
//! referenced attributes and how many values of each are selected — which is
//! all the fragmentation analysis and the cost model need.  Concrete value
//! bindings (which month, which group) are added by the workload generator and
//! only matter to the simulator.

use serde::{Deserialize, Serialize};

use schema::{AttrRef, StarSchema};

/// A selection predicate on one hierarchy attribute.
///
/// `values_selected` is the number of distinct attribute values selected
/// (1 for the paper's exact-match queries; larger values model IN-lists or
/// small ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// The referenced attribute.
    pub attr: AttrRef,
    /// Number of attribute values selected (≥ 1).
    pub values_selected: u64,
}

impl Predicate {
    /// An exact-match predicate selecting a single value.
    #[must_use]
    pub fn exact(attr: AttrRef) -> Self {
        Predicate {
            attr,
            values_selected: 1,
        }
    }

    /// A predicate selecting `values` distinct values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is zero.
    #[must_use]
    pub fn in_list(attr: AttrRef, values: u64) -> Self {
        assert!(values > 0, "a predicate must select at least one value");
        Predicate {
            attr,
            values_selected: values,
        }
    }

    /// The selectivity of this predicate: selected values / attribute
    /// cardinality, clamped to 1.
    #[must_use]
    pub fn selectivity(&self, schema: &StarSchema) -> f64 {
        let card = self.attr.cardinality(schema) as f64;
        (self.values_selected as f64 / card).min(1.0)
    }
}

/// A star query: a conjunction of predicates on distinct dimensions plus an
/// aggregation over the fact table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StarQuery {
    name: String,
    predicates: Vec<Predicate>,
}

impl StarQuery {
    /// Creates a query from predicates.
    ///
    /// # Panics
    ///
    /// Panics if two predicates reference the same dimension (the paper's
    /// query model has at most one selection level per dimension).
    #[must_use]
    pub fn new(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        for (i, p) in predicates.iter().enumerate() {
            assert!(
                !predicates[..i]
                    .iter()
                    .any(|q| q.attr.dimension == p.attr.dimension),
                "duplicate predicate on dimension {}",
                p.attr.dimension
            );
        }
        StarQuery {
            name: name.into(),
            predicates,
        }
    }

    /// Builds an exact-match query from `dimension::level` strings, e.g.
    /// `StarQuery::exact_match(&schema, "1MONTH1GROUP", &["time::month", "product::group"])`.
    ///
    /// # Panics
    ///
    /// Panics if an attribute cannot be resolved.
    #[must_use]
    pub fn exact_match(schema: &StarSchema, name: &str, attrs: &[&str]) -> Self {
        let predicates = attrs
            .iter()
            .map(|s| {
                let level_ref: schema::LevelRef = s
                    .parse()
                    .unwrap_or_else(|e| panic!("bad attribute {s:?}: {e}"));
                Predicate::exact(
                    level_ref
                        .resolve(schema)
                        .unwrap_or_else(|e| panic!("bad attribute {s:?}: {e}")),
                )
            })
            .collect();
        StarQuery::new(name, predicates)
    }

    /// The query's diagnostic name (e.g. `"1STORE"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The query's predicates.
    #[must_use]
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The predicate on `dimension`, if the query references it.
    #[must_use]
    pub fn predicate_on(&self, dimension: usize) -> Option<&Predicate> {
        self.predicates
            .iter()
            .find(|p| p.attr.dimension == dimension)
    }

    /// The dimensions referenced by the query.
    #[must_use]
    pub fn dimensions(&self) -> Vec<usize> {
        self.predicates.iter().map(|p| p.attr.dimension).collect()
    }

    /// Overall selectivity: product of the predicates' selectivities
    /// (independence / uniformity assumption of the paper's cost model).
    #[must_use]
    pub fn selectivity(&self, schema: &StarSchema) -> f64 {
        self.predicates
            .iter()
            .map(|p| p.selectivity(schema))
            .product()
    }

    /// Expected number of fact rows matching the query.
    #[must_use]
    pub fn expected_hits(&self, schema: &StarSchema) -> f64 {
        self.selectivity(schema) * schema.fact_row_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn paper_query_selectivities() {
        let s = apb1_schema();
        let one_store = StarQuery::exact_match(&s, "1STORE", &["customer::store"]);
        // §6.3: "Due to its query selectivity of 1/1440..."
        assert!((one_store.selectivity(&s) - 1.0 / 1_440.0).abs() < 1e-12);
        assert!((one_store.expected_hits(&s) - 1_296_000.0).abs() < 1.0);

        let one_month_one_group =
            StarQuery::exact_match(&s, "1MONTH1GROUP", &["time::month", "product::group"]);
        assert!((one_month_one_group.selectivity(&s) - 1.0 / (24.0 * 480.0)).abs() < 1e-15);

        let one_code_one_quarter =
            StarQuery::exact_match(&s, "1CODE1QUARTER", &["product::code", "time::quarter"]);
        // §6.3: 1CODE1QUARTER "has to process only 16,200 rows in total".
        assert!((one_code_one_quarter.expected_hits(&s) - 16_200.0).abs() < 1.0);
    }

    #[test]
    fn one_store_vs_one_code_one_quarter_hit_ratio() {
        // §6.3: "1STORE has about 80 times more hit tuples than 1CODE1QUARTER".
        let s = apb1_schema();
        let one_store = StarQuery::exact_match(&s, "1STORE", &["customer::store"]);
        let ocoq = StarQuery::exact_match(&s, "1CODE1QUARTER", &["product::code", "time::quarter"]);
        let ratio = one_store.expected_hits(&s) / ocoq.expected_hits(&s);
        assert!((ratio - 80.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn accessors() {
        let s = apb1_schema();
        let q = StarQuery::exact_match(&s, "1MONTH1GROUP", &["time::month", "product::group"]);
        assert_eq!(q.name(), "1MONTH1GROUP");
        assert_eq!(q.predicates().len(), 2);
        let time = s.dimension_index("time").unwrap();
        let customer = s.dimension_index("customer").unwrap();
        assert!(q.predicate_on(time).is_some());
        assert!(q.predicate_on(customer).is_none());
        assert_eq!(q.dimensions().len(), 2);
    }

    #[test]
    fn in_list_predicates_scale_selectivity() {
        let s = apb1_schema();
        let month = s.attr("time", "month").unwrap();
        let p = Predicate::in_list(month, 6);
        assert!((p.selectivity(&s) - 0.25).abs() < 1e-12);
        // Selecting more values than exist clamps to 1.
        let p = Predicate::in_list(month, 100);
        assert_eq!(p.selectivity(&s), 1.0);
    }

    #[test]
    fn query_with_no_predicates_is_a_full_scan() {
        let s = apb1_schema();
        let q = StarQuery::new("FULLSCAN", vec![]);
        assert_eq!(q.selectivity(&s), 1.0);
        assert_eq!(q.expected_hits(&s), s.fact_row_count() as f64);
        assert!(q.dimensions().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate predicate")]
    fn duplicate_dimension_rejected() {
        let s = apb1_schema();
        let _ = StarQuery::exact_match(&s, "BAD", &["product::group", "product::code"]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_value_predicate_rejected() {
        let s = apb1_schema();
        let _ = Predicate::in_list(s.attr("time", "month").unwrap(), 0);
    }
}
