//! Fragmentation thresholds (§4.4).
//!
//! Three thresholds rule out unsuitable fragmentations before any detailed
//! cost analysis:
//!
//! 1. **Minimum bitmap-fragment size** — with too many fragments the average
//!    bitmap fragment drops below the prefetch granule (or even below one
//!    page), which explodes the number of bitmap I/Os.  The paper derives
//!    `n_max = N / (8 · PgSize · PrefetchGran)`.
//! 2. **Maximum number of fragments** — the fragmentation metadata should fit
//!    in main memory ("administration overhead").
//! 3. **Maximum number of bitmaps** to materialise.
//!
//! There is also a lower bound: at least one fragment per fact-table disk so
//! that all disks can be used.

use serde::{Deserialize, Serialize};

use bitmap::IndexCatalog;
use schema::{PageSizing, StarSchema};

use crate::fragmentation::Fragmentation;

/// Administrator-supplied limits for the three thresholds of §4.4 plus the
/// minimum-parallelism lower bound of §4.7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentationConstraints {
    /// Prefetch granule for bitmap fragments, in pages (paper default: 4 for
    /// the n_max example, 5 in the simulation parameter table).
    pub bitmap_prefetch_pages: u64,
    /// Minimum average bitmap-fragment size, in pages.  The paper's threshold
    /// formula corresponds to requiring at least `bitmap_prefetch_pages`.
    pub min_bitmap_fragment_pages: f64,
    /// Maximum number of fragments the administrator is willing to manage.
    pub max_fragments: u64,
    /// Maximum number of bitmaps to materialise.
    pub max_bitmaps: u64,
    /// Number of disks the fact table is declustered over; a fragmentation
    /// must provide at least one fragment per disk.
    pub disks: u64,
}

impl Default for FragmentationConstraints {
    fn default() -> Self {
        FragmentationConstraints {
            bitmap_prefetch_pages: 4,
            min_bitmap_fragment_pages: 4.0,
            // "Ideally, the size of the fragmentation information should be
            // small enough to be cached in main memory" — one million
            // fragments of metadata is a generous default.
            max_fragments: 1_000_000,
            max_bitmaps: 100,
            disks: 100,
        }
    }
}

impl FragmentationConstraints {
    /// The paper's upper threshold on the number of fragments:
    /// `n_max = N / (8 · PgSize · PrefetchGran)`.
    ///
    /// With N = 1 866 240 000, 4 KB pages and a prefetch granule of 4 pages
    /// this yields 14 238 (§4.4).
    #[must_use]
    pub fn n_max(&self, sizing: &PageSizing) -> u64 {
        sizing.fact_rows() / (8 * sizing.page_size_bytes() * self.bitmap_prefetch_pages)
    }

    /// Corresponding minimal fact-fragment size in bytes
    /// ("this corresponds to a minimal fragment size of 2.5 MB").
    #[must_use]
    pub fn min_fact_fragment_bytes(&self, sizing: &PageSizing) -> f64 {
        let n_max = self.n_max(sizing).max(1);
        sizing.fact_rows() as f64 / n_max as f64 * sizing.fact_tuple_bytes() as f64
    }
}

/// Outcome of checking one fragmentation against the constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdReport {
    /// Number of fragments of the checked fragmentation.
    pub fragments: u64,
    /// Average bitmap-fragment size in pages.
    pub bitmap_fragment_pages: f64,
    /// Number of bitmaps that remain to be materialised under this
    /// fragmentation (after the §4.2 eliminations).
    pub bitmaps_required: u64,
    /// Violation: bitmap fragments smaller than the configured minimum.
    pub violates_min_bitmap_fragment: bool,
    /// Violation: more fragments than the administrator wants to manage.
    pub violates_max_fragments: bool,
    /// Violation: more bitmaps than allowed.
    pub violates_max_bitmaps: bool,
    /// Violation: fewer fragments than disks (cannot use all disks).
    pub violates_min_parallelism: bool,
}

impl ThresholdReport {
    /// True if the fragmentation satisfies every constraint.
    #[must_use]
    pub fn is_admissible(&self) -> bool {
        !self.violates_min_bitmap_fragment
            && !self.violates_max_fragments
            && !self.violates_max_bitmaps
            && !self.violates_min_parallelism
    }
}

/// Checks `fragmentation` against `constraints` for the given schema and
/// bitmap-index catalog.
#[must_use]
pub fn check_fragmentation(
    schema: &StarSchema,
    catalog: &IndexCatalog,
    constraints: &FragmentationConstraints,
    fragmentation: &Fragmentation,
) -> ThresholdReport {
    let sizing = PageSizing::new(schema);
    let fragments = fragmentation.fragment_count();
    let bitmap_fragment_pages = sizing.bitmap_fragment_pages(fragments);
    let frag_attrs: Vec<(usize, usize)> = fragmentation
        .attrs()
        .iter()
        .map(|a| (a.dimension, a.level))
        .collect();
    let bitmaps_required = catalog.total_bitmaps_under_fragmentation(&frag_attrs);

    ThresholdReport {
        fragments,
        bitmap_fragment_pages,
        bitmaps_required,
        violates_min_bitmap_fragment: bitmap_fragment_pages < constraints.min_bitmap_fragment_pages,
        violates_max_fragments: fragments > constraints.max_fragments,
        violates_max_bitmaps: bitmaps_required > constraints.max_bitmaps,
        violates_min_parallelism: fragments < constraints.disks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn n_max_matches_section_4_4() {
        // "with PrefetchGran = 4 and PgSize = 4K we get n_max = 14,238"
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        let c = FragmentationConstraints::default();
        assert_eq!(c.n_max(&sizing), 14_238);
        // "For a fact tuple size of 20 B, this corresponds to a minimal
        // fragment size of 2.5 MB."
        let mb = c.min_fact_fragment_bytes(&sizing) / (1024.0 * 1024.0);
        assert!((mb - 2.5).abs() < 0.1, "min fragment size {mb} MB");
    }

    #[test]
    fn month_group_is_admissible() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let c = FragmentationConstraints::default();
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        let report = check_fragmentation(&s, &catalog, &c, &f);
        assert!(report.is_admissible(), "{report:?}");
        assert_eq!(report.fragments, 11_520);
        assert_eq!(report.bitmaps_required, 32);
        assert!(report.bitmap_fragment_pages > 4.0);
    }

    #[test]
    fn month_code_violates_bitmap_fragment_size() {
        // §6.3: F_MonthCode drops bitmap fragments to 0.16 pages and "must be
        // avoided, which can be achieved by considering the fragmentation
        // threshold introduced in Section 4".
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let c = FragmentationConstraints::default();
        let f = Fragmentation::parse(&s, &["time::month", "product::code"]).unwrap();
        let report = check_fragmentation(&s, &catalog, &c, &f);
        assert!(report.violates_min_bitmap_fragment);
        assert!(!report.is_admissible());
        assert!(report.bitmap_fragment_pages < 0.2);
    }

    #[test]
    fn coarse_fragmentation_violates_min_parallelism() {
        // A one-dimensional fragmentation on year yields only 2 fragments —
        // not enough for 100 disks (§4.7 "may have too few fragments to even
        // use all available disks, which is of course unacceptable").
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let c = FragmentationConstraints::default();
        let f = Fragmentation::parse(&s, &["time::year"]).unwrap();
        let report = check_fragmentation(&s, &catalog, &c, &f);
        assert!(report.violates_min_parallelism);
        assert!(!report.is_admissible());
    }

    #[test]
    fn four_dimensional_finest_violates_max_fragments() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let c = FragmentationConstraints::default();
        let f = Fragmentation::parse(
            &s,
            &[
                "time::month",
                "product::code",
                "customer::store",
                "channel::channel",
            ],
        )
        .unwrap();
        let report = check_fragmentation(&s, &catalog, &c, &f);
        assert!(report.violates_max_fragments);
        assert!(report.violates_min_bitmap_fragment);
        // The finest fragmentation eliminates every bitmap.
        assert_eq!(report.bitmaps_required, 0);
    }

    #[test]
    fn max_bitmap_constraint() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let constraints = FragmentationConstraints {
            max_bitmaps: 30,
            ..FragmentationConstraints::default()
        };
        // F_MonthGroup leaves 32 bitmaps > 30 → violation.
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        let report = check_fragmentation(&s, &catalog, &constraints, &f);
        assert!(report.violates_max_bitmaps);
        // A fragmentation on customer::store additionally drops the 12
        // customer bitmaps (the store level is the finest) → 76-12-34... only
        // if time were fragmented; here only customer is: 76 - 12 = 64.
        let f = Fragmentation::parse(&s, &["customer::store"]).unwrap();
        let report = check_fragmentation(&s, &catalog, &constraints, &f);
        assert_eq!(report.bitmaps_required, 64);
    }

    #[test]
    fn n_max_scales_with_prefetch_granule() {
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        let c8 = FragmentationConstraints {
            bitmap_prefetch_pages: 8,
            ..FragmentationConstraints::default()
        };
        let c1 = FragmentationConstraints {
            bitmap_prefetch_pages: 1,
            ..FragmentationConstraints::default()
        };
        assert_eq!(c8.n_max(&sizing), 7_119);
        assert_eq!(c1.n_max(&sizing), 56_953);
    }
}
