//! Statistics collectors.
//!
//! Response times, utilisations and queue lengths are the observables the
//! paper reports.  Three collectors cover those needs:
//!
//! * [`Tally`] — sample statistics (count, mean, variance, min, max) computed
//!   online with Welford's algorithm.
//! * [`TimeWeighted`] — a piecewise-constant signal integrated over time,
//!   e.g. a queue length or a busy/idle indicator.
//! * [`Histogram`] — fixed-width bins for response-time distributions.

use crate::time::SimTime;

/// Online sample statistics (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (0 when empty).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another tally into this one (parallel/chunked collection).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::record`] every time the signal changes; the collector
/// integrates the previous value over the elapsed interval.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    start: Option<SimTime>,
}

impl TimeWeighted {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Records that the signal takes `value` from time `at` onwards.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.last_time {
            if at > last {
                self.weighted_sum += self.last_value * (at - last).as_millis();
            }
        } else {
            self.start = Some(at);
        }
        self.last_time = Some(self.last_time.map_or(at, |l| l.max(at)));
        self.last_value = value;
    }

    /// Time-weighted mean of the signal between the first recorded change and
    /// `until`.
    #[must_use]
    pub fn mean_until(&self, until: SimTime) -> f64 {
        let (Some(start), Some(last)) = (self.start, self.last_time) else {
            return 0.0;
        };
        let mut total = self.weighted_sum;
        if until > last {
            total += self.last_value * (until - last).as_millis();
        }
        let span = (until.max(last) - start).as_millis();
        if span == 0.0 {
            0.0
        } else {
            total / span
        }
    }
}

/// A fixed-width histogram over `[0, bin_width * bins)` with an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `bin_width` is not positive.
    #[must_use]
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0.0, "bin width must be positive");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation (negative values clamp into the first bin).
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = (value.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `idx`.
    #[must_use]
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Observations beyond the last bin.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (by bin upper edge); `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        Some(self.bin_width * self.counts.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_statistics() {
        let mut t = Tally::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 8);
        assert_eq!(t.sum(), 40.0);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic example is 4; sample variance 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn tally_empty_is_safe() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn tally_merge_matches_single_pass() {
        let values: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let mut whole = Tally::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_millis(0.0), 1.0);
        tw.record(SimTime::from_millis(10.0), 3.0);
        tw.record(SimTime::from_millis(20.0), 0.0);
        // 1.0 for 10ms, 3.0 for 10ms, 0.0 for 20ms  => 40/40 = 1.0
        assert!((tw.mean_until(SimTime::from_millis(40.0)) - 1.0).abs() < 1e-12);
        // Over just the recorded span (20ms): (10 + 30) / 20 = 2.0
        assert!((tw.mean_until(SimTime::from_millis(20.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_and_degenerate() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(SimTime::from_millis(10.0)), 0.0);
        let mut tw = TimeWeighted::new();
        tw.record(SimTime::from_millis(5.0), 7.0);
        assert_eq!(tw.mean_until(SimTime::from_millis(5.0)), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(10.0, 5);
        for v in [1.0, 9.9, 10.0, 25.0, 49.9, 50.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_count(99), 0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(f64::from(i) + 0.5);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(Histogram::new(1.0, 10).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_rejected() {
        let _ = Histogram::new(1.0, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford mean/variance agree with the naive two-pass computation.
        #[test]
        fn prop_tally_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let mut t = Tally::new();
            for &v in &values {
                t.record(v);
            }
            let n = values.len() as f64;
            let naive_mean = values.iter().sum::<f64>() / n;
            let naive_var =
                values.iter().map(|v| (v - naive_mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((t.mean() - naive_mean).abs() < 1e-6 * naive_mean.abs().max(1.0));
            prop_assert!((t.variance() - naive_var).abs() < 1e-5 * naive_var.abs().max(1.0));
        }

        /// Histogram conserves observations across bins + overflow.
        #[test]
        fn prop_histogram_conservation(values in proptest::collection::vec(0.0f64..1e4, 0..300)) {
            let mut h = Histogram::new(7.0, 50);
            for &v in &values {
                h.record(v);
            }
            let binned: u64 = (0..50).map(|i| h.bin_count(i)).sum::<u64>() + h.overflow();
            prop_assert_eq!(binned, values.len() as u64);
            prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
