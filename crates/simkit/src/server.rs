//! FCFS server resources.
//!
//! SIMPAD models processors and disks "explicitly as servers to realistically
//! capture access conflicts and delays" (paper §5).  The two building blocks
//! here do exactly that:
//!
//! * [`FcfsServer`] — a single server with a FIFO waiting queue.  Used for
//!   disks, where only one request can be in service at a time and the service
//!   time of a request may depend on the state left behind by the previous one
//!   (seek distance).
//! * [`MultiServer`] — `c` identical service slots sharing one FIFO queue.
//!   Used for CPU nodes that can interleave a bounded number of tasks.
//!
//! Both types are *passive*: they do not know about the event calendar.  The
//! caller submits work and receives the absolute completion time, then
//! schedules its own completion event.  This keeps the resource model
//! independent of the event payload type and easy to test in isolation.

use crate::stats::{Tally, TimeWeighted};
use crate::time::SimTime;

/// A single first-come-first-served server (e.g. one disk).
///
/// Requests are served strictly in submission order.  The server keeps track
/// of when it becomes free; a request submitted at time `t` starts at
/// `max(t, free_at)` and completes after its service time.
#[derive(Debug)]
pub struct FcfsServer {
    name: String,
    free_at: SimTime,
    busy: TimeWeighted,
    waiting_time: Tally,
    service_time: Tally,
    completed: u64,
}

impl FcfsServer {
    /// Creates an idle server.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        FcfsServer {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy: TimeWeighted::new(),
            waiting_time: Tally::new(),
            service_time: Tally::new(),
            completed: 0,
        }
    }

    /// The server's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The time at which the server's queue drains given work submitted so far.
    #[must_use]
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if a request submitted at `now` would start service immediately.
    #[must_use]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Submits a request arriving at `now` that needs `service` time.
    ///
    /// Returns `(start, completion)` — the absolute times at which service
    /// begins and ends.  The caller is responsible for scheduling an event at
    /// `completion`.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let completion = start + service;
        self.busy.record(start, 0.0);
        self.busy.record(completion, 1.0);
        self.waiting_time.record((start - now).as_millis());
        self.service_time.record(service.as_millis());
        self.completed += 1;
        self.free_at = completion;
        (start, completion)
    }

    /// Number of requests submitted so far.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.completed
    }

    /// Mean waiting time (queueing delay before service), in milliseconds.
    #[must_use]
    pub fn mean_waiting_ms(&self) -> f64 {
        self.waiting_time.mean()
    }

    /// Mean service time, in milliseconds.
    #[must_use]
    pub fn mean_service_ms(&self) -> f64 {
        self.service_time.mean()
    }

    /// Total busy time accumulated by the server, in milliseconds.
    #[must_use]
    pub fn total_busy_ms(&self) -> f64 {
        self.service_time.sum()
    }

    /// Utilisation of the server over `[0, horizon]`.
    #[must_use]
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.total_busy_ms() / horizon.as_millis()).min(1.0)
    }
}

/// A pool of `capacity` identical servers sharing a FIFO queue (e.g. the task
/// slots of one processing node).
///
/// Unlike [`FcfsServer`], service times are assumed independent of server
/// state, so the pool just tracks the earliest-free slot.
#[derive(Debug)]
pub struct MultiServer {
    name: String,
    slots: Vec<SimTime>,
    service_time: Tally,
    completed: u64,
}

impl MultiServer {
    /// Creates a pool with `capacity` idle slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "MultiServer capacity must be positive");
        MultiServer {
            name: name.into(),
            slots: vec![SimTime::ZERO; capacity],
            service_time: Tally::new(),
            completed: 0,
        }
    }

    /// The pool's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of service slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots that are idle at `now`.
    #[must_use]
    pub fn idle_slots_at(&self, now: SimTime) -> usize {
        self.slots.iter().filter(|&&f| f <= now).count()
    }

    /// Submits a request arriving at `now` needing `service` time and returns
    /// `(start, completion)` using the earliest-free slot.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let (idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .expect("capacity > 0");
        let start = self.slots[idx].max(now);
        let completion = start + service;
        self.slots[idx] = completion;
        self.service_time.record(service.as_millis());
        self.completed += 1;
        (start, completion)
    }

    /// Number of requests submitted so far.
    #[must_use]
    pub fn completed_requests(&self) -> u64 {
        self.completed
    }

    /// Total busy time summed over all slots, in milliseconds.
    #[must_use]
    pub fn total_busy_ms(&self) -> f64 {
        self.service_time.sum()
    }

    /// Mean utilisation per slot over `[0, horizon]`.
    #[must_use]
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.total_busy_ms() / (horizon.as_millis() * self.slots.len() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn fcfs_serialises_overlapping_requests() {
        let mut disk = FcfsServer::new("disk0");
        let (s1, c1) = disk.submit(ms(0.0), ms(10.0));
        let (s2, c2) = disk.submit(ms(2.0), ms(10.0));
        assert_eq!(s1, ms(0.0));
        assert_eq!(c1, ms(10.0));
        // Second request arrives while the first is in service: it waits.
        assert_eq!(s2, ms(10.0));
        assert_eq!(c2, ms(20.0));
        assert_eq!(disk.completed_requests(), 2);
        assert_eq!(disk.mean_waiting_ms(), 4.0); // (0 + 8) / 2
        assert_eq!(disk.mean_service_ms(), 10.0);
    }

    #[test]
    fn fcfs_idle_gap_resets_start_time() {
        let mut disk = FcfsServer::new("disk0");
        disk.submit(ms(0.0), ms(5.0));
        let (s, c) = disk.submit(ms(100.0), ms(5.0));
        assert_eq!(s, ms(100.0));
        assert_eq!(c, ms(105.0));
        assert!(disk.is_idle_at(ms(200.0)));
        assert!(!disk.is_idle_at(ms(102.0)));
    }

    #[test]
    fn fcfs_utilisation_bounded_by_one() {
        let mut disk = FcfsServer::new("disk0");
        for _ in 0..10 {
            disk.submit(ms(0.0), ms(10.0));
        }
        assert_eq!(disk.total_busy_ms(), 100.0);
        assert!((disk.utilisation(ms(100.0)) - 1.0).abs() < 1e-12);
        assert!((disk.utilisation(ms(200.0)) - 0.5).abs() < 1e-12);
        assert_eq!(disk.utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multi_server_runs_capacity_requests_in_parallel() {
        let mut node = MultiServer::new("node0", 4);
        let completions: Vec<_> = (0..4).map(|_| node.submit(ms(0.0), ms(10.0)).1).collect();
        assert!(completions.iter().all(|&c| c == ms(10.0)));
        // Fifth request has to wait for a slot.
        let (s5, c5) = node.submit(ms(0.0), ms(10.0));
        assert_eq!(s5, ms(10.0));
        assert_eq!(c5, ms(20.0));
        assert_eq!(node.capacity(), 4);
        assert_eq!(node.completed_requests(), 5);
    }

    #[test]
    fn multi_server_idle_slots() {
        let mut node = MultiServer::new("node0", 3);
        node.submit(ms(0.0), ms(10.0));
        assert_eq!(node.idle_slots_at(ms(5.0)), 2);
        assert_eq!(node.idle_slots_at(ms(10.0)), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn multi_server_rejects_zero_capacity() {
        let _ = MultiServer::new("bad", 0);
    }

    #[test]
    fn multi_server_utilisation() {
        let mut node = MultiServer::new("node0", 2);
        node.submit(ms(0.0), ms(10.0));
        node.submit(ms(0.0), ms(10.0));
        assert!((node.utilisation(ms(10.0)) - 1.0).abs() < 1e-12);
        assert!((node.utilisation(ms(40.0)) - 0.25).abs() < 1e-12);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A FCFS server never starts a request before the previous one
        /// finished and never before its arrival time.
        #[test]
        fn prop_fcfs_no_overlap(
            jobs in proptest::collection::vec((0.0f64..1e4, 0.1f64..1e3), 1..100)
        ) {
            // Sort by arrival time: callers submit in arrival order.
            let mut jobs = jobs;
            jobs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut server = FcfsServer::new("d");
            let mut prev_completion = SimTime::ZERO;
            for (arrival, service) in jobs {
                let (start, completion) =
                    server.submit(SimTime::from_millis(arrival), SimTime::from_millis(service));
                prop_assert!(start >= SimTime::from_millis(arrival));
                prop_assert!(start >= prev_completion);
                prop_assert_eq!(completion, start + SimTime::from_millis(service));
                prev_completion = completion;
            }
        }

        /// A multi-server never has more than `capacity` overlapping jobs.
        #[test]
        fn prop_multi_server_respects_capacity(
            capacity in 1usize..6,
            services in proptest::collection::vec(1.0f64..50.0, 1..60)
        ) {
            let mut node = MultiServer::new("n", capacity);
            let intervals: Vec<(SimTime, SimTime)> = services
                .iter()
                .map(|&s| node.submit(SimTime::ZERO, SimTime::from_millis(s)))
                .collect();
            // At any completion boundary, the number of intervals strictly
            // containing that instant is below capacity.
            for &(_, end) in &intervals {
                let overlapping = intervals
                    .iter()
                    .filter(|(s, e)| *s < end && end < *e)
                    .count();
                prop_assert!(overlapping < capacity);
            }
        }
    }
}
