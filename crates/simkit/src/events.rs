//! The event calendar.
//!
//! [`EventQueue`] is a priority queue ordered by simulation time with a FIFO
//! tie-break: two events scheduled for the same instant are delivered in the
//! order in which they were scheduled.  This mirrors CSIM's event-set semantics
//! and makes runs fully deterministic.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the calendar: time, insertion sequence number, payload.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, within a
        // time, the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar for discrete-event simulation.
///
/// The queue tracks the current simulation clock: [`EventQueue::pop`] advances
/// the clock to the timestamp of the delivered event.  Scheduling an event in
/// the past is a model bug and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    scheduled: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// The current simulation time (timestamp of the last delivered event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events delivered via [`EventQueue::pop`].
    #[must_use]
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies before the current simulation time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after the current simulation time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.  Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.delivered += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3.0), "c");
        q.schedule(SimTime::from_millis(1.0), "a");
        q.schedule(SimTime::from_millis(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_for_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4.0)));
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_millis(4.0));
        assert!(q.pop().is_none());
        // Clock stays put when the queue drains.
        assert_eq!(q.now(), SimTime::from_millis(4.0));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10.0), 1u32);
        q.pop().unwrap();
        q.schedule_after(SimTime::from_millis(5.0), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(15.0));
        assert_eq!(e, 2);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10.0), ());
        q.pop().unwrap();
        q.schedule(SimTime::from_millis(1.0), ());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(SimTime::from_millis(f64::from(i)), i);
        }
        assert_eq!(q.scheduled_count(), 5);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert_eq!(q.delivered_count(), 2);
        assert_eq!(q.len(), 3);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always come out in non-decreasing time order, regardless of
        /// the insertion order.
        #[test]
        fn prop_time_ordering(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is delivered exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0.0f64..1e3, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
