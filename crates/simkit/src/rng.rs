//! Reproducible random-number streams.
//!
//! SIMPAD selects query parameters "at random" (paper §5).  To keep experiment
//! runs reproducible and independent of each other, every model component
//! draws from its own [`RngStream`], derived from a master seed plus a stream
//! identifier — the classic CSIM "stream" idiom.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, seeded random stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
    seed: u64,
    stream: u64,
}

impl RngStream {
    /// Creates stream number `stream` of the family identified by `seed`.
    ///
    /// Different `(seed, stream)` pairs produce statistically independent
    /// sequences; the same pair always produces the same sequence.
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        // SplitMix64-style mixing so that consecutive stream ids do not yield
        // correlated StdRng seeds.
        let mut z = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        RngStream {
            rng: StdRng::seed_from_u64(z),
            seed,
            stream,
        }
    }

    /// The master seed this stream was derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stream identifier.
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        self.stream
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_index bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "uniform range must be non-empty");
        self.rng.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.rng.gen_bool(p)
    }

    /// Random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut out: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_stream_reproduce() {
        let mut a = RngStream::new(42, 7);
        let mut b = RngStream::new(42, 7);
        let xs: Vec<u64> = (0..100).map(|_| a.uniform_index(1000)).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.uniform_index(1000)).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.seed(), 42);
        assert_eq!(a.stream_id(), 7);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = RngStream::new(42, 0);
        let mut b = RngStream::new(42, 1);
        let xs: Vec<u64> = (0..50).map(|_| a.uniform_index(1_000_000)).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.uniform_index(1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_index_respects_bound() {
        let mut r = RngStream::new(1, 1);
        for _ in 0..1_000 {
            assert!(r.uniform_index(17) < 17);
        }
    }

    #[test]
    fn uniform_respects_range() {
        let mut r = RngStream::new(1, 2);
        for _ in 0..1_000 {
            let v = r.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = RngStream::new(7, 3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.5, "sample mean {mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = RngStream::new(3, 4);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = RngStream::new(5, 5);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        RngStream::new(0, 0).uniform_index(0);
    }
}
