//! Reproducible random-number streams.
//!
//! SIMPAD selects query parameters "at random" (paper §5).  To keep experiment
//! runs reproducible and independent of each other, every model component
//! draws from its own [`RngStream`], derived from a master seed plus a stream
//! identifier — the classic CSIM "stream" idiom.

/// A named, seeded random stream.
///
/// Implemented as a self-contained xoshiro256++ generator (seeded through
/// SplitMix64) so the simulator has no external RNG dependency and sequences
/// are stable across toolchain upgrades.
#[derive(Debug, Clone)]
pub struct RngStream {
    state: [u64; 4],
    seed: u64,
    stream: u64,
}

impl RngStream {
    /// Creates stream number `stream` of the family identified by `seed`.
    ///
    /// Different `(seed, stream)` pairs produce statistically independent
    /// sequences; the same pair always produces the same sequence.
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        // SplitMix64-style mixing so that consecutive stream ids do not yield
        // correlated generator states.
        let mut z =
            seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        let mut next_word = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            w ^ (w >> 31)
        };
        RngStream {
            state: [next_word(), next_word(), next_word(), next_word()],
            seed,
            stream,
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        // Canonical xoshiro256++ transition: s1/s0 mix in the already-updated
        // s2/s3 words (s1 ^= s2 ^ s0, s0 ^= s3 ^ s1).
        let s2x = s2 ^ s0;
        let s3x = s3 ^ s1;
        let s1n = s1 ^ s2x;
        let s0n = s0 ^ s3x;
        self.state = [s0n, s1n, s2x ^ t, s3x.rotate_left(45)];
        result
    }

    /// Uniform float in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The master seed this stream was derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stream identifier.
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        self.stream
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_index bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "uniform range must be non-empty");
        let v = lo + (hi - lo) * self.unit();
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.unit() < p
    }

    /// Random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut out: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = usize::try_from(self.uniform_index(i as u64 + 1)).expect("index fits usize");
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_stream_reproduce() {
        let mut a = RngStream::new(42, 7);
        let mut b = RngStream::new(42, 7);
        let xs: Vec<u64> = (0..100).map(|_| a.uniform_index(1000)).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.uniform_index(1000)).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.seed(), 42);
        assert_eq!(a.stream_id(), 7);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = RngStream::new(42, 0);
        let mut b = RngStream::new(42, 1);
        let xs: Vec<u64> = (0..50).map(|_| a.uniform_index(1_000_000)).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.uniform_index(1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_index_respects_bound() {
        let mut r = RngStream::new(1, 1);
        for _ in 0..1_000 {
            assert!(r.uniform_index(17) < 17);
        }
    }

    #[test]
    fn uniform_respects_range() {
        let mut r = RngStream::new(1, 2);
        for _ in 0..1_000 {
            let v = r.uniform(3.0, 5.0);
            assert!((3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = RngStream::new(7, 3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.5, "sample mean {mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = RngStream::new(3, 4);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = RngStream::new(5, 5);
        assert!(!(0..100).any(|_| r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_rejected() {
        RngStream::new(0, 0).uniform_index(0);
    }
}
