//! `simkit` — a small, deterministic discrete-event simulation engine.
//!
//! The VLDB 2000 paper this repository reproduces evaluated its data-allocation
//! strategies with SIMPAD, a C++ simulator built on the commercial CSIM18
//! library.  `simkit` provides the subset of CSIM functionality that the SIMPAD
//! model actually needs:
//!
//! * a simulation clock and an event calendar ([`EventQueue`]),
//! * first-come-first-served single-server resources with explicit waiting
//!   queues ([`server::FcfsServer`]) used to model disks,
//! * multi-slot servers ([`server::MultiServer`]) used to model CPU nodes,
//! * statistics collectors ([`stats::Tally`], [`stats::TimeWeighted`],
//!   [`stats::Histogram`]),
//! * reproducible random-number streams ([`rng::RngStream`]).
//!
//! The engine is *event-driven* rather than process-oriented: a model
//! implements state machines and reacts to typed events popped from the
//! calendar.  This keeps the engine free of unsafe code and makes simulations
//! fully deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use simkit::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(5.0), Ev::Ping(2));
//! q.schedule(SimTime::from_millis(1.0), Ev::Ping(1));
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_millis(1.0));
//! assert_eq!(e, Ev::Ping(1));
//! ```

#![forbid(unsafe_code)]

pub mod events;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::RngStream;
pub use server::{FcfsServer, MultiServer};
pub use stats::{Histogram, Tally, TimeWeighted};
pub use time::SimTime;
