//! Simulation time.
//!
//! All model parameters in the paper (seek times, per-page transfer times,
//! instruction costs divided by MIPS rates) are naturally expressed in
//! milliseconds, so [`SimTime`] stores milliseconds as an `f64`.  The type is a
//! thin newtype that provides total ordering (simulation time is never NaN) and
//! a few convenience conversions.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulation time, in milliseconds.
///
/// `SimTime` is used both for absolute timestamps and for durations; the
/// arithmetic operators behave as expected for either interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero (the start of every simulation run).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is NaN or negative; simulation time is totally ordered
    /// and never moves backwards.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        assert!(!ms.is_nan(), "simulation time must not be NaN");
        assert!(ms >= 0.0, "simulation time must not be negative: {ms}");
        SimTime(ms)
    }

    /// Creates a time value from seconds.
    #[must_use]
    pub fn from_secs(s: f64) -> Self {
        Self::from_millis(s * 1_000.0)
    }

    /// Creates a time value from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::from_millis(us / 1_000.0)
    }

    /// The value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// The value in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of a negative duration.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            SimTime(self.0 - other.0)
        } else {
            SimTime::ZERO
        }
    }

    /// True if this is exactly time zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so a total order exists.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction would be negative ({} - {})",
            self.0,
            rhs.0
        );
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_millis(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_millis(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.3} s", self.as_secs())
        } else {
            write!(f, "{:.3} ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_millis(), 1_500.0);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(2_000.0).as_millis(), 2.0);
        assert!(SimTime::ZERO.is_zero());
        assert!(!t.is_zero());
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10.0);
        let b = SimTime::from_millis(4.0);
        assert_eq!((a + b).as_millis(), 14.0);
        assert_eq!((a - b).as_millis(), 6.0);
        assert_eq!((a * 2.0).as_millis(), 20.0);
        assert_eq!((a / 2.0).as_millis(), 5.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 14.0);
        c -= b;
        assert_eq!(c.as_millis(), 10.0);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(5.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_millis(), 4.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_millis(-1.0);
    }

    #[test]
    #[should_panic(expected = "would be negative")]
    fn underflowing_sub_rejected() {
        let _ = SimTime::from_millis(1.0) - SimTime::from_millis(2.0);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_millis(f64::from(i))).sum();
        assert_eq!(total.as_millis(), 10.0);
    }

    #[test]
    fn display_switches_units() {
        assert_eq!(format!("{}", SimTime::from_millis(12.5)), "12.500 ms");
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000 s");
    }
}
