//! Criterion micro-benchmarks of the bitmap substrate: Boolean operations,
//! population counts, WAH compression and encoded-index selections over a
//! materialised (scaled-down) fact table.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use warehouse::bitmap::{Bitmap, MaterialisedFactTable, MaterialisedIndex, WahBitmap};
use warehouse::prelude::*;

fn bench_bitmap_boolean_ops(c: &mut Criterion) {
    let n = 1_000_000;
    let a = Bitmap::from_positions(n, (0..n).filter(|i| i % 3 == 0));
    let b = Bitmap::from_positions(n, (0..n).filter(|i| i % 7 == 0));
    c.bench_function("bitmap_and_1m_bits", |bencher| {
        bencher.iter(|| std::hint::black_box(a.and(&b)))
    });
    c.bench_function("bitmap_or_1m_bits", |bencher| {
        bencher.iter(|| std::hint::black_box(a.or(&b)))
    });
    c.bench_function("bitmap_count_ones_1m_bits", |bencher| {
        bencher.iter(|| std::hint::black_box(a.count_ones()))
    });
}

fn bench_wah_compression(c: &mut Criterion) {
    let n = 1_000_000;
    // Sparse bitmap: the realistic shape of a bitmap-join-index bitmap.
    let sparse = Bitmap::from_positions(n, (0..n).filter(|i| i % 1_440 == 0));
    c.bench_function("wah_compress_sparse_1m_bits", |bencher| {
        bencher.iter(|| std::hint::black_box(WahBitmap::compress(&sparse)))
    });
    let compressed = WahBitmap::compress(&sparse);
    c.bench_function("wah_decompress_sparse_1m_bits", |bencher| {
        bencher.iter(|| std::hint::black_box(compressed.decompress()))
    });
}

fn bench_encoded_index_selection(c: &mut Criterion) {
    let schema = schema::apb1::apb1_scaled_down();
    let table = MaterialisedFactTable::generate(&schema, 7);
    let catalog = IndexCatalog::default_for(&schema);
    let product = schema.dimension_index("product").unwrap();
    let index = MaterialisedIndex::build(&schema, &catalog, &table, product);
    let group_level = schema.attr("product", "group").unwrap().level;
    c.bench_function("encoded_index_select_group", |bencher| {
        bencher.iter_batched(
            || (),
            |()| std::hint::black_box(index.select(group_level, 3)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_bitmap_boolean_ops,
    bench_wah_compression,
    bench_encoded_index_selection
);
criterion_main!(benches);
