//! Criterion benchmarks of the parallel star-join execution engine: the
//! 1STORE full-scan query swept over 1 → 8 workers (the measured Figure 3
//! axis), plus the fragment-pruned fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use warehouse::prelude::*;
use warehouse::workload::QueryType;

fn bench_worker_sweep(c: &mut Criterion) {
    let engine = StarJoinEngine::new(bench_support::measured_store(true));
    let schema = engine.store().schema().clone();
    let one_store = BoundQuery::new(
        &schema,
        QueryType::OneStore.to_star_query(&schema),
        vec![17],
    );
    let plan = engine.plan(&one_store);
    for workers in [1usize, 2, 4, 8] {
        let name = format!("exec_1store_{workers}_workers");
        c.bench_function(&name, |bencher| {
            bencher.iter(|| {
                std::hint::black_box(engine.execute_plan(
                    &plan,
                    &ExecConfig {
                        workers,
                        ..ExecConfig::default()
                    },
                ))
            })
        });
    }
}

fn bench_pruned_fast_path(c: &mut Criterion) {
    let engine = StarJoinEngine::new(bench_support::measured_store(true));
    let schema = engine.store().schema().clone();
    let pruned = BoundQuery::new(
        &schema,
        QueryType::OneMonthOneGroup.to_star_query(&schema),
        vec![3, 1],
    );
    c.bench_function("exec_1month1group_pruned_serial", |bencher| {
        bencher.iter(|| std::hint::black_box(engine.execute_serial(&pruned)))
    });
    c.bench_function("exec_plan_1store", |bencher| {
        let one_store = BoundQuery::new(
            &schema,
            QueryType::OneStore.to_star_query(&schema),
            vec![17],
        );
        bencher.iter(|| std::hint::black_box(engine.plan(&one_store)))
    });
}

criterion_group!(benches, bench_worker_sweep, bench_pruned_fast_path);
criterion_main!(benches);
