//! Criterion benchmarks of the MDHF analytics: query classification, the
//! analytic cost model, fragmentation enumeration (Table 2) and the advisor.

use criterion::{criterion_group, criterion_main, Criterion};
use warehouse::mdhf::{enumerate_fragmentations, table2_census};
use warehouse::prelude::*;

fn bench_classification_and_cost(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let query = QueryType::OneCodeOneQuarter.to_star_query(&schema);
    c.bench_function("classify_query", |b| {
        b.iter(|| std::hint::black_box(classify(&schema, &fragmentation, &query)))
    });
    c.bench_function("cost_model_evaluate", |b| {
        b.iter(|| std::hint::black_box(model.evaluate(&fragmentation, &query)))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    c.bench_function("enumerate_fragmentations_apb1", |b| {
        b.iter(|| std::hint::black_box(enumerate_fragmentations(&schema)))
    });
    c.bench_function("table2_census_apb1", |b| {
        b.iter(|| std::hint::black_box(table2_census(&schema)))
    });
}

fn bench_advisor(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    let advisor = Advisor::new(schema.clone(), AdvisorConfig::default());
    let mix: Vec<(StarQuery, f64)> = QueryType::standard_mix()
        .into_iter()
        .map(|qt| (qt.to_star_query(&schema), 1.0))
        .collect();
    c.bench_function("advisor_recommend_standard_mix", |b| {
        b.iter(|| std::hint::black_box(advisor.recommend(&mix, &[])))
    });
}

criterion_group!(
    benches,
    bench_classification_and_cost,
    bench_enumeration,
    bench_advisor
);
criterion_main!(benches);
