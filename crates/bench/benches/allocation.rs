//! Criterion benchmarks of the physical allocation layer: fragment-to-disk
//! mapping, declustering (gcd) analysis and per-disk capacity accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use warehouse::allocation::{effective_parallelism, CapacityReport, PhysicalAllocation};
use warehouse::prelude::*;

fn bench_disk_mapping(c: &mut Criterion) {
    let allocation = PhysicalAllocation::round_robin(101);
    c.bench_function("fact_disk_mapping_10k_fragments", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for f in 0..10_000u64 {
                acc = acc.wrapping_add(allocation.fact_disk(f));
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_parallelism_analysis(c: &mut Criterion) {
    let allocation = PhysicalAllocation::round_robin(100);
    let fragments: Vec<u64> = (0..24).map(|m| m * 480 + 17).collect();
    c.bench_function("effective_parallelism_1code", |b| {
        b.iter(|| std::hint::black_box(effective_parallelism(&allocation, &fragments)))
    });
}

fn bench_capacity_report(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let allocation = PhysicalAllocation::round_robin(100);
    c.bench_function("capacity_report_month_group_100_disks", |b| {
        b.iter(|| {
            std::hint::black_box(CapacityReport::compute(
                &schema,
                &fragmentation,
                &allocation,
                32,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_disk_mapping,
    bench_parallelism_analysis,
    bench_capacity_report
);
criterion_main!(benches);
