//! Criterion benches of the bitmap representation layer: k-way intersection
//! under plain, WAH, roaring and adaptive representations, on a sparse
//! clustered predicate mix (where the compressed domain should win or tie)
//! and a mid-density random mix (where adaptive must fall back to plain
//! speed), plus the unrolled plain word kernels themselves.

use bench_support::{random_bitmap, sparse_clustered_bitmap};
use criterion::{criterion_group, criterion_main, Criterion};
use warehouse::prelude::*;

const N: usize = 1_000_000;
const K: usize = 4;

fn bench_mix(c: &mut Criterion, label: &str, bitmaps: &[Bitmap]) {
    let plain_refs: Vec<&Bitmap> = bitmaps.iter().collect();
    let wah: Vec<WahBitmap> = bitmaps.iter().map(WahBitmap::compress).collect();
    let wah_refs: Vec<&WahBitmap> = wah.iter().collect();
    let roaring: Vec<RoaringBitmap> = bitmaps.iter().map(RoaringBitmap::compress).collect();
    let roaring_refs: Vec<&RoaringBitmap> = roaring.iter().collect();
    let adaptive: Vec<BitmapRepr> = bitmaps
        .iter()
        .map(|b| BitmapRepr::from_bitmap(b.clone(), RepresentationPolicy::default()))
        .collect();
    let adaptive_refs: Vec<&BitmapRepr> = adaptive.iter().collect();

    let mut group = c.benchmark_group(label);
    group.bench_function("plain_and_many", |bencher| {
        bencher.iter(|| std::hint::black_box(Bitmap::and_many(&plain_refs)))
    });
    group.bench_function("wah_and_many", |bencher| {
        bencher.iter(|| std::hint::black_box(WahBitmap::and_many(&wah_refs)))
    });
    group.bench_function("roaring_and_many", |bencher| {
        bencher.iter(|| std::hint::black_box(RoaringBitmap::and_many(&roaring_refs)))
    });
    group.bench_function("adaptive_and_many", |bencher| {
        bencher.iter(|| std::hint::black_box(BitmapRepr::and_many(&adaptive_refs)))
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let bitmaps: Vec<Bitmap> = (0..K as u64)
        .map(|s| sparse_clustered_bitmap(N, s))
        .collect();
    bench_mix(c, "repr_sparse_clustered_1pct", &bitmaps);
}

fn bench_mid_density(c: &mut Criterion) {
    // ~50 % density, uniformly random — incompressible for WAH.
    let bitmaps: Vec<Bitmap> = (0..K as u64).map(|s| random_bitmap(N, s, 2)).collect();
    bench_mix(c, "repr_mid_random_50pct", &bitmaps);
}

/// The unrolled plain word kernels on dense operands, where the kernel body
/// (not representation bookkeeping) dominates: pairwise AND/OR, the k-way
/// fold for k ∈ {2, 8}, and the four-accumulator popcount.
fn bench_unrolled_kernels(c: &mut Criterion) {
    let bitmaps: Vec<Bitmap> = (0..8u64).map(|s| random_bitmap(N, s, 2)).collect();
    let refs: Vec<&Bitmap> = bitmaps.iter().collect();

    let mut group = c.benchmark_group("plain_unrolled_kernels");
    group.bench_function("and_pairwise", |bencher| {
        bencher.iter(|| std::hint::black_box(bitmaps[0].and(&bitmaps[1])))
    });
    group.bench_function("or_pairwise", |bencher| {
        bencher.iter(|| std::hint::black_box(bitmaps[0].or(&bitmaps[1])))
    });
    group.bench_function("and_many_k2", |bencher| {
        bencher.iter(|| std::hint::black_box(Bitmap::and_many(&refs[..2])))
    });
    group.bench_function("and_many_k8", |bencher| {
        bencher.iter(|| std::hint::black_box(Bitmap::and_many(&refs)))
    });
    group.bench_function("count_ones", |bencher| {
        bencher.iter(|| std::hint::black_box(bitmaps[0].count_ones()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse,
    bench_mid_density,
    bench_unrolled_kernels
);
criterion_main!(benches);
