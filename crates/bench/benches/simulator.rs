//! Criterion benchmarks of the SIMPAD simulator itself: planning and
//! end-to-end execution of small experiment points (the figure binaries run
//! the full-size sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use warehouse::prelude::*;
use warehouse::simpad;

fn small_config() -> SimConfig {
    SimConfig {
        disks: 20,
        nodes: 4,
        subqueries_per_node: 3,
        ..SimConfig::default()
    }
}

fn bench_query_planning(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let allocation = PhysicalAllocation::round_robin(20);
    let config = small_config();
    let bound = BoundQuery::new(
        &schema,
        QueryType::OneStore.to_star_query(&schema),
        vec![815],
    );
    c.bench_function("plan_1store_11520_subqueries", |b| {
        b.iter(|| {
            std::hint::black_box(simpad::plan_query(
                &schema,
                &catalog,
                &fragmentation,
                &allocation,
                &config,
                &bound,
            ))
        })
    });
}

fn bench_simulation_runs(c: &mut Criterion) {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("simulate_1month1group", |b| {
        b.iter(|| {
            let setup = ExperimentSetup::new(
                schema.clone(),
                fragmentation.clone(),
                small_config(),
                QueryType::OneMonthOneGroup,
                1,
            );
            std::hint::black_box(run_experiment(&setup))
        })
    });
    group.bench_function("simulate_1code1quarter", |b| {
        b.iter(|| {
            let setup = ExperimentSetup::new(
                schema.clone(),
                fragmentation.clone(),
                small_config(),
                QueryType::OneCodeOneQuarter,
                1,
            );
            std::hint::black_box(run_experiment(&setup))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_planning, bench_simulation_runs);
criterion_main!(benches);
