//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary in `src/bin/` prints the same rows/series the paper reports,
//! using these helpers to build the APB-1 schema, the fragmentations under
//! test and the simulator setups.

use warehouse::prelude::*;
use warehouse::simpad;

/// The three fragmentations compared in §6.3 / Table 6 / Figure 6.
pub const EXPERIMENT3_FRAGMENTATIONS: [(&str, &str); 3] = [
    ("F_MonthGroup", "product::group"),
    ("F_MonthClass", "product::class"),
    ("F_MonthCode", "product::code"),
];

/// Builds the full-size APB-1 schema used by all experiments.
#[must_use]
pub fn paper_schema() -> StarSchema {
    schema::apb1::apb1_schema()
}

/// Builds a two-dimensional fragmentation on `time::month` and the given
/// product hierarchy level (`"product::group"` etc.).
#[must_use]
pub fn month_product_fragmentation(schema: &StarSchema, product_level: &str) -> Fragmentation {
    Fragmentation::parse(schema, &["time::month", product_level])
        .expect("valid fragmentation attributes")
}

/// The paper's standard fragmentation `F_MonthGroup`.
#[must_use]
pub fn f_month_group(schema: &StarSchema) -> Fragmentation {
    month_product_fragmentation(schema, "product::group")
}

/// Runs one simulator point and returns its summary.
#[must_use]
pub fn run_point(
    schema: &StarSchema,
    fragmentation: &Fragmentation,
    config: SimConfig,
    query_type: QueryType,
    queries: usize,
) -> simpad::RunSummary {
    let setup = ExperimentSetup::new(
        schema.clone(),
        fragmentation.clone(),
        config,
        query_type,
        queries,
    );
    run_experiment(&setup)
}

/// Builds a materialised [`FragmentStore`] for measured (wall-clock)
/// experiments: an APB-1-shaped warehouse under a `F_MonthGroup`-style
/// fragmentation, sized so that parallel execution pays off.  `quick`
/// shrinks the fact volume to roughly a quarter for CI smoke runs.
#[must_use]
pub fn measured_store(quick: bool) -> FragmentStore {
    let config = if quick {
        schema::apb1::Apb1Config {
            channels: 3,
            months: 24,
            stores: 120,
            product_codes: 240,
            density: 0.55,
            fact_tuple_bytes: 20,
        }
    } else {
        schema::apb1::Apb1Config {
            channels: 3,
            months: 24,
            stores: 240,
            product_codes: 480,
            density: 0.5,
            fact_tuple_bytes: 20,
        }
    };
    let schema = config.build();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"])
        .expect("valid fragmentation attributes");
    FragmentStore::build(&schema, &fragmentation, 7)
}

/// True when the binary was invoked with `--quick` (reduced parameter
/// sweeps for smoke-testing) — the full sweeps are the default.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a Markdown-ish table row with fixed column widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let rendered: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", rendered.join(" | "));
}

/// Prints a table header followed by a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_the_expected_objects() {
        let s = paper_schema();
        assert_eq!(f_month_group(&s).fragment_count(), 11_520);
        assert_eq!(
            month_product_fragmentation(&s, "product::code").fragment_count(),
            345_600
        );
        assert_eq!(EXPERIMENT3_FRAGMENTATIONS.len(), 3);
    }

    #[test]
    fn run_point_produces_a_summary() {
        let s = paper_schema();
        let f = f_month_group(&s);
        let config = SimConfig {
            disks: 10,
            nodes: 2,
            subqueries_per_node: 2,
            ..SimConfig::default()
        };
        let summary = run_point(&s, &f, config, QueryType::OneMonthOneGroup, 1);
        assert_eq!(summary.queries.len(), 1);
        assert!(summary.mean_response_ms > 0.0);
    }
}
