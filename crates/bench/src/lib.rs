//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Every binary in `src/bin/` prints the same rows/series the paper reports,
//! using these helpers to build the APB-1 schema, the fragmentations under
//! test and the simulator setups.
//!
//! # Quick start
//!
//! ```
//! // The schema and fragmentation every figure binary starts from.
//! let schema = bench_support::paper_schema();
//! let fragmentation = bench_support::f_month_group(&schema);
//! assert_eq!(fragmentation.fragment_count(), 11_520);
//! ```

#![forbid(unsafe_code)]

use warehouse::prelude::*;
use warehouse::simpad;

/// The three fragmentations compared in §6.3 / Table 6 / Figure 6.
pub const EXPERIMENT3_FRAGMENTATIONS: [(&str, &str); 3] = [
    ("F_MonthGroup", "product::group"),
    ("F_MonthClass", "product::class"),
    ("F_MonthCode", "product::code"),
];

/// Builds the full-size APB-1 schema used by all experiments.
#[must_use]
pub fn paper_schema() -> StarSchema {
    schema::apb1::apb1_schema()
}

/// Builds a two-dimensional fragmentation on `time::month` and the given
/// product hierarchy level (`"product::group"` etc.).
#[must_use]
pub fn month_product_fragmentation(schema: &StarSchema, product_level: &str) -> Fragmentation {
    Fragmentation::parse(schema, &["time::month", product_level])
        .expect("valid fragmentation attributes")
}

/// The paper's standard fragmentation `F_MonthGroup`.
#[must_use]
pub fn f_month_group(schema: &StarSchema) -> Fragmentation {
    month_product_fragmentation(schema, "product::group")
}

/// Runs one simulator point and returns its summary.
#[must_use]
pub fn run_point(
    schema: &StarSchema,
    fragmentation: &Fragmentation,
    config: SimConfig,
    query_type: QueryType,
    queries: usize,
) -> simpad::RunSummary {
    let setup = ExperimentSetup::new(
        schema.clone(),
        fragmentation.clone(),
        config,
        query_type,
        queries,
    );
    run_experiment(&setup)
}

/// Builds a materialised [`FragmentStore`] for measured (wall-clock)
/// experiments: an APB-1-shaped warehouse under a `F_MonthGroup`-style
/// fragmentation, sized so that parallel execution pays off.  `quick`
/// shrinks the fact volume to roughly a quarter for CI smoke runs.
#[must_use]
pub fn measured_store(quick: bool) -> FragmentStore {
    measured_store_fragmented(quick, &["time::month", "product::group"])
}

/// The measured-experiment APB-1 configuration behind [`measured_store`],
/// exposed so multi-user experiments can refragment the same warehouse.
#[must_use]
pub fn measured_config(quick: bool) -> schema::apb1::Apb1Config {
    if quick {
        schema::apb1::Apb1Config {
            channels: 3,
            months: 24,
            stores: 120,
            product_codes: 240,
            density: 0.55,
            fact_tuple_bytes: 20,
        }
    } else {
        schema::apb1::Apb1Config {
            channels: 3,
            months: 24,
            stores: 240,
            product_codes: 480,
            density: 0.5,
            fact_tuple_bytes: 20,
        }
    }
}

/// Builds the measured warehouse under an arbitrary fragmentation — the
/// fragmentation axis of the multi-user throughput sweep.
#[must_use]
pub fn measured_store_fragmented(quick: bool, attrs: &[&str]) -> FragmentStore {
    let schema = measured_config(quick).build();
    let fragmentation =
        Fragmentation::parse(&schema, attrs).expect("valid fragmentation attributes");
    FragmentStore::build(&schema, &fragmentation, 7)
}

/// True when the binary was invoked with `--quick` (reduced parameter
/// sweeps for smoke-testing) — the full sweeps are the default.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value following `flag` on the command line, if any.
#[must_use]
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        }
    }
    None
}

/// Splitmix64-style mixing, for deterministic pseudo-random bit positions
/// in the representation-study workloads.
#[must_use]
pub fn splitmix(seed: u64, value: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An `n`-bit bitmap of ~1 % density in 512-bit runs — the clustered shape
/// of selections on range-contiguous hierarchy values.  Shared by the
/// `fig_bitmap_compression` binary and the `bitmap_repr` criterion bench.
#[must_use]
pub fn sparse_clustered_bitmap(n: usize, seed: u64) -> Bitmap {
    let run = 512usize;
    let stride = run * 100;
    let mut bitmap = Bitmap::new(n);
    let mut start = (splitmix(seed, 0) as usize) % stride;
    while start < n {
        for p in start..(start + run).min(n) {
            bitmap.set(p, true);
        }
        start += stride;
    }
    bitmap
}

/// An `n`-bit bitmap whose bits are set uniformly at random with
/// probability `1 / one_in` — incompressible for WAH beyond ~1.5 %.
#[must_use]
pub fn random_bitmap(n: usize, seed: u64, one_in: u64) -> Bitmap {
    Bitmap::from_positions(
        n,
        (0..n).filter(|&i| splitmix(seed, i as u64).is_multiple_of(one_in)),
    )
}

/// Prints a Markdown-ish table row with fixed column widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let rendered: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", rendered.join(" | "));
}

/// Prints a table header followed by a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| (*c).to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_the_expected_objects() {
        let s = paper_schema();
        assert_eq!(f_month_group(&s).fragment_count(), 11_520);
        assert_eq!(
            month_product_fragmentation(&s, "product::code").fragment_count(),
            345_600
        );
        assert_eq!(EXPERIMENT3_FRAGMENTATIONS.len(), 3);
    }

    #[test]
    fn run_point_produces_a_summary() {
        let s = paper_schema();
        let f = f_month_group(&s);
        let config = SimConfig {
            disks: 10,
            nodes: 2,
            subqueries_per_node: 2,
            ..SimConfig::default()
        };
        let summary = run_point(&s, &f, config, QueryType::OneMonthOneGroup, 1);
        assert_eq!(summary.queries.len(), 1);
        assert!(summary.mean_response_ms > 0.0);
    }
}
