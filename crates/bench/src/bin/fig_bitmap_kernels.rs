//! Bitmap kernel sweep: unrolled plain kernels and compressed-domain
//! intersections across representations and operand counts.
//!
//! The hot operation of star-join selection is the k-way AND of predicate
//! bitmaps.  This binary measures it for three predicate shapes (dense
//! random, sparse random, sparse clustered), three representations
//! (plain/unrolled, WAH, roaring) and k ∈ {2, 4, 8} operands, and compares
//! the unrolled plain kernel against a *scalar reference* — a verbatim copy
//! of the pre-unrolling per-word gather fold — to quantify the kernel
//! rewrite itself.
//!
//! Every timed path is asserted bit-identical to the scalar reference, and
//! the adaptive chooser is asserted to never pick a representation that is
//! both larger and slower than one of the fixed alternatives.
//!
//! `--quick` shrinks the bitmap length and repeat count for CI smoke runs;
//! `--json <path>` writes the sweep (default `BENCH_bitmap_kernels.json`)
//! for the CI perf-regression gate.

use std::fmt::Write as _;
use std::time::Instant;

use bench_support::{
    arg_value, print_header, print_row, quick_mode, random_bitmap, sparse_clustered_bitmap,
};
use warehouse::prelude::*;

const KS: [usize; 3] = [2, 4, 8];

/// One predicate shape: a family of deterministic bitmaps indexed by seed.
struct Shape {
    name: &'static str,
    build: fn(usize, u64) -> Bitmap,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "dense",
            // ~50 % uniform random: roaring picks bitset containers and the
            // word kernels dominate.
            build: |n, seed| random_bitmap(n, seed, 2),
        },
        Shape {
            name: "sparse",
            // ~0.2 % uniform random: roaring picks sorted-array containers.
            build: |n, seed| random_bitmap(n, seed + 1_000, 500),
        },
        Shape {
            name: "clustered",
            // ~1 % in 512-bit runs: WAH fills and roaring run containers.
            build: |n, seed| sparse_clustered_bitmap(n, seed),
        },
    ]
}

/// Rebuilds the raw u64 word vector of a bitmap from its public iterator,
/// so the scalar reference kernel operates on exactly the same bit data
/// without reaching into `Bitmap` internals.
fn to_words(bitmap: &Bitmap) -> Vec<u64> {
    let mut words = vec![0u64; bitmap.len().div_ceil(64)];
    for position in bitmap.iter_ones() {
        words[position / 64] |= 1u64 << (position % 64);
    }
    words
}

/// The pre-unrolling multi-way AND, verbatim: one bounds-checked gather
/// fold per word across all operands.  This is the baseline the unrolled
/// kernels are measured against.
fn scalar_and_many(operands: &[&[u64]]) -> Vec<u64> {
    let first = operands.first().expect("at least one operand");
    (0..first.len())
        .map(|i| operands.iter().fold(!0u64, |acc, w| acc & w[i]))
        .collect()
}

/// Best-of-`repeats` wall time of `f`, in microseconds.
fn time_us<R>(repeats: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// One sweep point: a (shape, representation, k) cell of the table.
struct Point {
    shape: &'static str,
    repr: &'static str,
    k: usize,
    micros: f64,
    size_bytes: usize,
}

fn write_json(path: &str, quick: bool, n: usize, points: &[Point], speedups: &[(usize, f64)]) {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"bitmap_kernels\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"bits\": {n},");
    // The CI gate compares per-file means of `qps` and `latency_mean_ms`
    // (±15 %).  Per-point rates would be dominated by the sub-microsecond
    // cells (clustered roaring), whose best-of-N timings jitter far beyond
    // the tolerance — so the gated metrics aggregate over the whole sweep,
    // where the stable slow cells dominate, and the per-point cells carry
    // an ungated `micros` field instead.
    let total_micros: f64 = points.iter().map(|p| p.micros).sum();
    let _ = writeln!(
        out,
        "  \"qps\": {:.3},",
        1e6 * points.len() as f64 / total_micros.max(1e-3)
    );
    let _ = writeln!(
        out,
        "  \"latency_mean_ms\": {:.6},",
        total_micros / points.len() as f64 / 1e3
    );
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"shape\": \"{}\", \"repr\": \"{}\", \"k\": {}, \"micros\": {:.3}, \
             \"size_bytes\": {}}}{comma}",
            p.shape, p.repr, p.k, p.micros, p.size_bytes,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"dense_unrolled_speedup\": [");
    for (i, (k, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"k\": {k}, \"speedup\": {speedup:.3}}}{comma}");
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(path, out).expect("write bench JSON");
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = quick_mode();
    let n: usize = if quick { 262_144 } else { 2_097_152 };
    // Best-of-N timing: generous N, so the minimum converges despite CI
    // scheduling noise — the whole sweep is still well under a second.
    let repeats = if quick { 31 } else { 15 };
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_bitmap_kernels.json".to_string());

    println!("Bitmap kernel sweep over {n}-bit bitmaps (times are best-of-{repeats})");
    println!();
    let widths = [10usize, 3, 11, 11, 11, 11, 9];
    print_header(
        &[
            "shape",
            "k",
            "scalar us",
            "plain us",
            "wah us",
            "roaring us",
            "speedup",
        ],
        &widths,
    );

    let mut points: Vec<Point> = Vec::new();
    let mut dense_speedups: Vec<(usize, f64)> = Vec::new();

    for shape in shapes() {
        for k in KS {
            let bitmaps: Vec<Bitmap> = (0..k as u64).map(|s| (shape.build)(n, s)).collect();
            let plain_refs: Vec<&Bitmap> = bitmaps.iter().collect();
            let words: Vec<Vec<u64>> = bitmaps.iter().map(to_words).collect();
            let word_refs: Vec<&[u64]> = words.iter().map(Vec::as_slice).collect();
            let wah: Vec<WahBitmap> = bitmaps.iter().map(WahBitmap::compress).collect();
            let wah_refs: Vec<&WahBitmap> = wah.iter().collect();
            let roaring: Vec<RoaringBitmap> = bitmaps.iter().map(RoaringBitmap::compress).collect();
            let roaring_refs: Vec<&RoaringBitmap> = roaring.iter().collect();

            let scalar_us = time_us(repeats, || scalar_and_many(&word_refs));
            let plain_us = time_us(repeats, || Bitmap::and_many(&plain_refs));
            let wah_us = time_us(repeats, || WahBitmap::and_many(&wah_refs));
            let roaring_us = time_us(repeats, || RoaringBitmap::and_many(&roaring_refs));

            // Every path is bit-identical to the scalar reference.
            let reference = scalar_and_many(&word_refs);
            let plain_result = Bitmap::and_many(&plain_refs);
            assert_eq!(to_words(&plain_result), reference, "plain kernel bits");
            assert_eq!(
                WahBitmap::and_many(&wah_refs).decompress(),
                plain_result,
                "wah compressed-domain bits"
            );
            assert_eq!(
                RoaringBitmap::and_many(&roaring_refs).decompress(),
                plain_result,
                "roaring compressed-domain bits"
            );

            let speedup = scalar_us / plain_us;
            if shape.name == "dense" {
                dense_speedups.push((k, speedup));
            }

            print_row(
                &[
                    shape.name.to_string(),
                    k.to_string(),
                    format!("{scalar_us:.0}"),
                    format!("{plain_us:.0}"),
                    format!("{wah_us:.0}"),
                    format!("{roaring_us:.0}"),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );

            let plain_bytes: usize = bitmaps.iter().map(Bitmap::size_bytes).sum();
            let wah_bytes: usize = wah.iter().map(WahBitmap::size_bytes).sum();
            let roaring_bytes: usize = roaring.iter().map(RoaringBitmap::size_bytes).sum();
            points.push(Point {
                shape: shape.name,
                repr: "scalar_reference",
                k,
                micros: scalar_us,
                size_bytes: plain_bytes,
            });
            points.push(Point {
                shape: shape.name,
                repr: "plain",
                k,
                micros: plain_us,
                size_bytes: plain_bytes,
            });
            points.push(Point {
                shape: shape.name,
                repr: "wah",
                k,
                micros: wah_us,
                size_bytes: wah_bytes,
            });
            points.push(Point {
                shape: shape.name,
                repr: "roaring",
                k,
                micros: roaring_us,
                size_bytes: roaring_bytes,
            });

            // The adaptive chooser must never pick a representation that is
            // both larger and slower than a fixed alternative (generous 2x
            // timing slack keeps the wall-clock side of the check robust).
            let adaptive: Vec<BitmapRepr> = bitmaps
                .iter()
                .map(|b| BitmapRepr::from_bitmap(b.clone(), RepresentationPolicy::default()))
                .collect();
            let adaptive_refs: Vec<&BitmapRepr> = adaptive.iter().collect();
            let adaptive_us = time_us(repeats, || BitmapRepr::and_many(&adaptive_refs));
            let adaptive_bytes: usize = adaptive.iter().map(BitmapRepr::size_bytes).sum();
            assert_eq!(
                BitmapRepr::and_many(&adaptive_refs).to_plain(),
                plain_result,
                "adaptive bits"
            );
            for (alt, alt_bytes, alt_us) in [
                ("plain", plain_bytes, plain_us),
                ("wah", wah_bytes, wah_us),
                ("roaring", roaring_bytes, roaring_us),
            ] {
                assert!(
                    adaptive_bytes <= alt_bytes || adaptive_us <= alt_us * 2.0,
                    "{} k={k}: adaptive ({adaptive_bytes} B, {adaptive_us:.0} us) is larger \
                     and slower than {alt} ({alt_bytes} B, {alt_us:.0} us)",
                    shape.name,
                );
            }
        }
    }

    println!();
    for (k, speedup) in &dense_speedups {
        println!("dense {k}-way AND: unrolled kernel {speedup:.2}x over the scalar reference");
    }
    let best = dense_speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    // The ≥3x acceptance gate is a statement about the optimized kernels —
    // debug builds run the unrolled loops without vectorization, so only
    // the bit-identity asserts apply there.
    assert!(
        cfg!(debug_assertions) || best >= 3.0,
        "dense multi-way AND must reach 3x over the scalar reference (best {best:.2}x)"
    );

    write_json(&json_path, quick, n, &points, &dense_speedups);
    println!("wrote {json_path}");
}
