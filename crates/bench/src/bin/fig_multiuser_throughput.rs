//! Multi-user throughput — the measured counterpart of the paper's SIMPAD
//! multi-user experiments.
//!
//! The single-query binaries measure *speedup*: how fast one star query gets
//! when the pool grows.  This binary measures *throughput*: how many queries
//! per second a fixed shared pool completes when the scheduler admits
//! several queries concurrently.  It sweeps
//!
//! * **MPL** (admission limit, the multi-programming level),
//! * **worker count** (the shared pool size),
//! * **fragmentation** (`F_Month` with 24 fat fragments vs. `F_MonthGroup`
//!   with many small ones),
//!
//! over a deterministic stream of single-fragment `1MONTH1GROUP` queries —
//! the workload whose intra-query parallelism is 1, so every bit of
//! speedup must come from *inter*-query parallelism.  Each measured point
//! reports queries/sec, the per-query latency distribution, worker
//! utilisation, steal and disk-affinity rates, and the sweep cross-checks
//! the throughput *trend* against two independent pillars:
//!
//! * the analytic multi-user bound `X(m) ∝ min(m · p₁, w)`
//!   ([`CostModel::multi_user_throughput`]),
//! * SIMPAD closed multi-user runs on the full-size APB-1 system
//!   ([`simpad::RunSummary::throughput_qps`]).
//!
//! On machines with ≥ 4 cores the binary *asserts* that throughput at
//! MPL 4 strictly exceeds MPL 1 on the 4-worker pool (one re-measurement
//! allowed, like the single-query speedup gate).  Results are also written
//! as JSON (default `BENCH_multiuser_throughput.json`, override with
//! `--json <path>`) for CI perf-trajectory artifacts.

use std::fmt::Write as _;
use std::num::NonZeroUsize;

use bench_support::{arg_value, measured_store_fragmented, paper_schema, quick_mode};
use warehouse::prelude::*;
use warehouse::simpad;
use warehouse::workload::QueryStream;

/// One measured sweep point, kept for the JSON report.
struct Point {
    fragmentation: &'static str,
    workers: usize,
    mpl: usize,
    queries: usize,
    wall_ms: f64,
    qps: f64,
    latency_mean_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    latency_p999_ms: f64,
    utilisation: f64,
    steal_rate: f64,
    affinity_hit_rate: f64,
    cost_relative: f64,
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs one scheduler sweep point and returns its throughput metrics.
fn measure(
    engine: &StarJoinEngine,
    queries: &[BoundQuery],
    workers: usize,
    mpl: usize,
) -> ThroughputMetrics {
    engine
        .execute_stream(queries, &SchedulerConfig::new(workers, mpl))
        .metrics
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn write_json(
    path: &str,
    quick: bool,
    points: &[Point],
    sim_series: &[(usize, f64, f64)],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"multiuser_throughput\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"cores\": {},", cores());
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"fragmentation\": \"{}\", \"workers\": {}, \"mpl\": {}, \"queries\": {}, \
             \"wall_ms\": {}, \"qps\": {}, \"latency_mean_ms\": {}, \"latency_p95_ms\": {}, \
             \"latency_p99_ms\": {}, \"latency_p999_ms\": {}, \
             \"utilisation\": {}, \"steal_rate\": {}, \"affinity_hit_rate\": {}, \
             \"cost_relative\": {}}}{comma}",
            p.fragmentation,
            p.workers,
            p.mpl,
            p.queries,
            json_number(p.wall_ms),
            json_number(p.qps),
            json_number(p.latency_mean_ms),
            json_number(p.latency_p95_ms),
            json_number(p.latency_p99_ms),
            json_number(p.latency_p999_ms),
            json_number(p.utilisation),
            json_number(p.steal_rate),
            json_number(p.affinity_hit_rate),
            json_number(p.cost_relative),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"simpad_multiuser\": [");
    for (i, (mpl, qps, relative)) in sim_series.iter().enumerate() {
        let comma = if i + 1 < sim_series.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mpl\": {mpl}, \"qps\": {}, \"relative\": {}}}{comma}",
            json_number(*qps),
            json_number(*relative)
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let json_path =
        arg_value("--json").unwrap_or_else(|| "BENCH_multiuser_throughput.json".to_string());
    let worker_axis: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let mpl_axis: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let stream_len = if quick { 96 } else { 256 };
    let fragmentations: [(&'static str, &[&str]); 2] = [
        ("F_Month", &["time::month"]),
        ("F_MonthGroup", &["time::month", "product::group"]),
    ];

    println!("Multi-user throughput: concurrent 1MONTH1GROUP streams on the shared pool");
    println!(
        "machine: {} core(s); stream: {stream_len} single-fragment queries per point",
        cores()
    );
    println!();

    // Analytic pillar: the multi-user bound on the full-size system — the
    // query is single-fragment under both fragmentations, so one model per
    // worker count serves every row of the sweep.
    let full_schema = paper_schema();
    let full_frag = Fragmentation::parse(&full_schema, &["time::month", "product::group"])
        .expect("valid fragmentation attributes");
    let full_query = QueryType::OneMonthOneGroup.to_star_query(&full_schema);
    let cost_model = CostModel::new(full_schema.clone(), IndexCatalog::default_for(&full_schema));

    let widths = [12usize, 7, 4, 10, 9, 12, 11, 11, 6, 7, 9, 9];
    let mut points: Vec<Point> = Vec::new();
    for (frag_name, attrs) in fragmentations {
        let engine = StarJoinEngine::new(measured_store_fragmented(quick, attrs));
        let schema = engine.store().schema().clone();
        let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 2024);
        let queries = generator.batch(stream_len);
        let tasks: usize = queries.iter().map(|q| engine.plan(q).task_count()).sum();
        println!(
            "{frag_name}: {} rows in {} fragments; stream decomposes into {tasks} tasks",
            engine.store().total_rows(),
            engine.store().fragment_count(),
        );
        bench_support::print_header(
            &[
                "frag",
                "workers",
                "mpl",
                "qps",
                "rel",
                "mean [ms]",
                "p95 [ms]",
                "p99 [ms]",
                "util",
                "steal",
                "affinity",
                "cost rel",
            ],
            &widths,
        );
        for &workers in worker_axis {
            let mut baseline_qps: Option<f64> = None;
            for &mpl in mpl_axis {
                let metrics = measure(&engine, &queries, workers, mpl);
                let qps = metrics.queries_per_sec();
                let relative = baseline_qps.map_or(1.0, |b| qps / b);
                baseline_qps.get_or_insert(qps);
                let cost = cost_model.multi_user_throughput(&full_frag, &full_query, mpl, workers);
                bench_support::print_row(
                    &[
                        frag_name.to_string(),
                        workers.to_string(),
                        mpl.to_string(),
                        format!("{qps:.0}"),
                        format!("{relative:.2}x"),
                        format!("{:.3}", metrics.latency_mean().as_secs_f64() * 1e3),
                        format!("{:.3}", metrics.latency_p95().as_secs_f64() * 1e3),
                        format!("{:.3}", metrics.latency_p99().as_secs_f64() * 1e3),
                        format!("{:.2}", metrics.worker_utilisation()),
                        format!("{:.2}", metrics.steal_rate()),
                        format!("{:.2}", metrics.affinity_hit_rate()),
                        format!("{:.2}x", cost.relative_throughput),
                    ],
                    &widths,
                );
                points.push(Point {
                    fragmentation: frag_name,
                    workers,
                    mpl,
                    queries: stream_len,
                    wall_ms: metrics.pool.wall.as_secs_f64() * 1e3,
                    qps,
                    latency_mean_ms: metrics.latency_mean().as_secs_f64() * 1e3,
                    latency_p95_ms: metrics.latency_p95().as_secs_f64() * 1e3,
                    latency_p99_ms: metrics.latency_p99().as_secs_f64() * 1e3,
                    latency_p999_ms: metrics.latency_p999().as_secs_f64() * 1e3,
                    utilisation: metrics.worker_utilisation(),
                    steal_rate: metrics.steal_rate(),
                    affinity_hit_rate: metrics.affinity_hit_rate(),
                    cost_relative: cost.relative_throughput,
                });
            }
        }
        println!();
    }

    // Simulated pillar: SIMPAD closed multi-user runs on the full-size
    // APB-1 system with a 4-node / 20-disk configuration.
    println!("SIMPAD cross-check (full-size APB-1, F_MonthGroup, 4 nodes, 20 disks):");
    let sim_widths = [4usize, 12, 9];
    bench_support::print_header(&["mpl", "sim qps", "sim rel"], &sim_widths);
    let mut sim_series: Vec<(usize, f64, f64)> = Vec::new();
    let mut sim_baseline: Option<f64> = None;
    for &mpl in mpl_axis {
        let config = SimConfig {
            disks: 20,
            nodes: 4,
            subqueries_per_node: 4,
            ..SimConfig::default()
        };
        let setup = simpad::ExperimentSetup::new(
            full_schema.clone(),
            full_frag.clone(),
            config,
            QueryType::OneMonthOneGroup,
            (6 * mpl).min(24),
        )
        .with_stream(QueryStream::MultiUser { streams: mpl });
        let summary = simpad::run_experiment(&setup);
        let qps = summary.throughput_qps();
        let relative = sim_baseline.map_or(1.0, |b| qps / b);
        sim_baseline.get_or_insert(qps);
        bench_support::print_row(
            &[
                mpl.to_string(),
                format!("{qps:.2}"),
                format!("{relative:.2}x"),
            ],
            &sim_widths,
        );
        sim_series.push((mpl, qps, relative));
    }
    println!();

    match write_json(&json_path, quick, &points, &sim_series) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }

    // All three pillars agree on the trend: relative throughput climbs with
    // the MPL while single-fragment queries leave workers idle, and
    // saturates at the pool size.
    println!();
    println!(
        "Expected shape: measured rel ≈ analytic min(mpl, workers) while the pool has idle \
         workers; SIMPAD's multi-user series climbs the same way on the full-size system."
    );

    // The throughput gate, mirrored from the single-query speedup gate.
    if cores() < 4 {
        println!(
            "skipping the MPL-4 > MPL-1 throughput assertion: only {} core(s)",
            cores()
        );
        return;
    }
    let engine = StarJoinEngine::new(measured_store_fragmented(quick, &["time::month"]));
    let schema = engine.store().schema().clone();
    let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 77);
    let queries = generator.batch(stream_len);
    let mut last = (0.0, 0.0);
    let ok = (0..2).any(|attempt| {
        let single = measure(&engine, &queries, 4, 1).queries_per_sec();
        let multi = measure(&engine, &queries, 4, 4).queries_per_sec();
        last = (single, multi);
        if multi <= single && attempt == 0 {
            eprintln!("first measurement was {multi:.0} vs {single:.0} qps; re-measuring once");
        }
        multi > single
    });
    let (single, multi) = last;
    assert!(
        ok,
        "throughput at MPL 4 ({multi:.0} qps) did not exceed MPL 1 ({single:.0} qps) on 4 workers"
    );
    println!(
        "gate: MPL 4 throughput {multi:.0} qps > MPL 1 throughput {single:.0} qps on 4 workers ✓"
    );
}
