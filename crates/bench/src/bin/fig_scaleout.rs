//! Multi-node scale-out — shared-nothing vs shared-disk on the simulated
//! node → disk subsystem.
//!
//! The paper's architecture is a Shared Disk parallel machine; this study
//! asks the question it leaves open: how does the same MDHF warehouse
//! behave when the disks are *owned* by nodes (shared-nothing) instead of
//! reachable by every processing element (shared-disk)?  The sweep crosses
//!
//! * **nodes** ∈ {1, 2, 4, 8}, each owning a fixed number of disks (so
//!   adding nodes adds I/O bandwidth — the scale-out axis),
//! * **skew factor** θ ∈ {0, 1} on both the fact rows and the query
//!   values (uniform → classic Zipf),
//! * **MPL** (the multi-user admission level),
//! * **node strategy**: [`NodeStrategy::SharedNothing`] (cross-node cache
//!   misses ship pages over the simulated interconnect) vs
//!   [`NodeStrategy::SharedDisk`] (every node reads every disk directly),
//!
//! running a mixed `1MONTH1GROUP` + `1CODE` stream against the node-aware
//! scheduler: tasks are dealt to their fragment's home node, dry workers
//! steal node-locally before migrating across the interconnect, and each
//! node runs its own LRU page cache.
//!
//! Each point reports **simulated** queries/sec (queries over the
//! deterministic simulated makespan — bit-reproducible on any machine;
//! wall-clock qps is reported alongside but never gated), per-node load
//! imbalance (measured vs the analytic `allocation::node_load_shares`
//! prediction), interconnect traffic and the migration rate.
//!
//! **Gates** (deterministic):
//!
//! 1. **scale-out** — on the Zipf stream, shared-nothing simulated qps at
//!    8 nodes must be at least 2× the 1-node configuration's,
//! 2. **balance** — per-node imbalance under θ = 1 must stay within 1.5×
//!    the uniform workload's (8 nodes, shared-nothing),
//! 3. **bit-identity** — every query's hits and measure sums are identical
//!    across all node counts and both strategies.
//!
//! Results are written as JSON (default `BENCH_scaleout.json`, override
//! with `--json <path>`) for the CI `bench-regression` gate.

use std::fmt::Write as _;

use bench_support::{arg_value, quick_mode};
use warehouse::allocation::{load_imbalance, node_load_shares};
use warehouse::prelude::*;

/// One measured sweep point, kept for the JSON report.
struct Point {
    nodes: u64,
    theta: f64,
    mpl: usize,
    shared_nothing: bool,
    disks: u64,
    workers: usize,
    queries: usize,
    /// Simulated queries/sec — deterministic, the gated metric.
    qps: f64,
    /// Wall-clock queries/sec — machine-dependent, report-only.
    wall_qps: f64,
    node_imbalance: f64,
    predicted_node_imbalance: f64,
    net_ms: f64,
    net_pages: u64,
    migration_rate: f64,
    cache_hit_rate: f64,
    sim_elapsed_ms: f64,
}

/// The scaled-down warehouse of the scale-out study.
fn study_schema() -> StarSchema {
    schema::apb1::Apb1Config {
        channels: 3,
        months: 12,
        stores: 60,
        product_codes: 120,
        density: 0.3,
        fact_tuple_bytes: 20,
    }
    .build()
}

/// Builds the θ-skewed engine and its matching θ-skewed query stream.
fn engine_and_stream(
    schema: &StarSchema,
    theta: f64,
    rows: usize,
    stream_len: usize,
) -> (StarJoinEngine, Vec<BoundQuery>) {
    let fragmentation = Fragmentation::parse(schema, &["time::month", "product::code"])
        .expect("valid fragmentation attributes");
    let store = FragmentStore::build_skewed(schema, &fragmentation, 2026, theta, rows);
    let engine = StarJoinEngine::new(store);
    // 1MONTH1GROUP and 1CODE prune on the fragmentation attributes alone;
    // 1GROUP1STORE additionally restricts the store dimension, which is
    // *not* a fragmentation attribute, so it drives bitmap joins — and with
    // staggered bitmap allocation some of those bitmaps live on *remote*
    // nodes, exercising the shared-nothing interconnect.
    let mut stream = InterleavedStream::new(
        schema,
        &[
            QueryType::OneMonthOneGroup,
            QueryType::OneCode,
            QueryType::OneGroupOneStore,
        ],
        99,
    )
    .with_value_skew(theta);
    let queries = stream.take_queries(stream_len);
    (engine, queries)
}

/// Analytic per-node imbalance prediction for the stream: fact-scan
/// service time per distinct scanned fragment (repeat scans hit the node's
/// cache), folded into per-node load shares by the two-level placement.
fn predicted_node_imbalance(
    engine: &StarJoinEngine,
    queries: &[BoundQuery],
    placement: &NodePlacement,
    io: &IoConfig,
    rows_per_page: u64,
) -> (f64, Vec<f64>) {
    let n = engine.store().fragment_count() as usize;
    let mut weights = vec![0.0f64; n];
    for query in queries {
        for &fragment in engine.plan(query).fragments() {
            let rows = engine.store().fragment(fragment).len() as u64;
            if rows == 0 {
                continue;
            }
            let pages = rows.div_ceil(rows_per_page);
            let granules = pages.div_ceil(io.fact_prefetch_pages.max(1));
            weights[fragment as usize] = io.disk.avg_seek_ms
                + granules as f64 * io.disk.settle_controller_ms
                + pages as f64 * io.disk.per_page_ms;
        }
    }
    let shares = node_load_shares(placement, &weights);
    (load_imbalance(&shares), shares)
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

fn write_json(
    path: &str,
    quick: bool,
    points: &[Point],
    shares: &[(u64, f64, f64)],
    gates: (f64, f64, f64, f64),
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"scaleout\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"nodes\": {}, \"theta\": {}, \"mpl\": {}, \"shared_nothing\": {}, \
             \"disks\": {}, \"workers\": {}, \"queries\": {}, \"qps\": {}, \"wall_qps\": {}, \
             \"node_imbalance\": {}, \"predicted_node_imbalance\": {}, \"net_ms\": {}, \
             \"net_pages\": {}, \"migration_rate\": {}, \"cache_hit_rate\": {}, \
             \"sim_elapsed_ms\": {}}}{comma}",
            p.nodes,
            json_number(p.theta),
            p.mpl,
            p.shared_nothing,
            p.disks,
            p.workers,
            p.queries,
            json_number(p.qps),
            json_number(p.wall_qps),
            json_number(p.node_imbalance),
            json_number(p.predicted_node_imbalance),
            json_number(p.net_ms),
            p.net_pages,
            json_number(p.migration_rate),
            json_number(p.cache_hit_rate),
            json_number(p.sim_elapsed_ms),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"node_shares\": [");
    for (i, (node, predicted, measured)) in shares.iter().enumerate() {
        let comma = if i + 1 < shares.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"node\": {node}, \"predicted_share\": {}, \"measured_share\": {}}}{comma}",
            json_number(*predicted),
            json_number(*measured)
        );
    }
    let _ = writeln!(out, "  ],");
    let (qps_1, qps_8, uniform, skewed) = gates;
    let _ = writeln!(
        out,
        "  \"gate\": {{\"qps_1node\": {}, \"qps_8nodes\": {}, \"scaling\": {}, \
         \"uniform_node_imbalance\": {}, \"zipf1_node_imbalance\": {}, \"balance_ratio\": {}}}",
        json_number(qps_1),
        json_number(qps_8),
        json_number(qps_8 / qps_1),
        json_number(uniform),
        json_number(skewed),
        json_number(skewed / uniform)
    );
    out.push_str("}\n");
    std::fs::write(path, out)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let quick = quick_mode();
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_scaleout.json".to_string());
    let node_axis: [u64; 4] = [1, 2, 4, 8];
    let thetas = [0.0f64, 1.0];
    let mpl_axis: &[usize] = if quick { &[4] } else { &[2, 8] };
    let disks_per_node = 4u64;
    let workers = if quick { 4 } else { 8 };
    let rows = if quick { 60_000 } else { 150_000 };
    let stream_len = if quick { 48 } else { 96 };

    let schema = study_schema();
    let sizing = schema::PageSizing::new(&schema);
    let rows_per_page = sizing.fact_tuples_per_page();
    println!("Multi-node scale-out: shared-nothing vs shared-disk on the node-aware scheduler");
    println!(
        "warehouse: {rows} rows, F_MonthCode fragmentation; stream: {stream_len} \
         1MONTH1GROUP/1CODE/1GROUP1STORE queries; {disks_per_node} disks/node, {workers} workers"
    );
    println!();

    let widths = [6usize, 6, 4, 9, 9, 9, 9, 9, 10, 7, 7];
    bench_support::print_header(
        &[
            "nodes", "theta", "mpl", "strategy", "sim qps", "wall qps", "node imb", "pred imb",
            "net [ms]", "migr", "cache",
        ],
        &widths,
    );

    let mut points: Vec<Point> = Vec::new();
    let mut node_shares: Vec<(u64, f64, f64)> = Vec::new();
    // Gate accumulators: shared-nothing simulated qps at 1 and 8 nodes on
    // the Zipf stream (first MPL of the axis), and the 8-node per-node
    // imbalances under θ = 0 and θ = 1.
    let (mut qps_1node, mut qps_8nodes) = (0.0f64, 0.0f64);
    let mut gate_imbalances: [f64; 2] = [0.0, 0.0];
    // Bit-identity reference per θ: the 1-node shared-disk outcome.
    for &theta in &thetas {
        let (engine, queries) = engine_and_stream(&schema, theta, rows, stream_len);
        let mut reference: Option<Vec<(u64, Vec<u64>)>> = None;
        for &nodes in &node_axis {
            for (strategy, shared_nothing) in [
                (NodeStrategy::SharedDisk, false),
                (NodeStrategy::SharedNothing, true),
            ] {
                let placement = NodePlacement::new(nodes, disks_per_node, strategy);
                for &mpl in mpl_axis {
                    let io = IoConfig::with_nodes(placement).cache(4_096);
                    let metrics = engine
                        .execute_stream(
                            &queries,
                            &SchedulerConfig::new(workers, mpl)
                                .with_placement(*placement.allocation())
                                .with_io(io),
                        )
                        .metrics;
                    let io_metrics = metrics.pool.io.as_ref().expect("I/O metrics");
                    let (predicted, predicted_shares) =
                        predicted_node_imbalance(&engine, &queries, &placement, &io, rows_per_page);
                    let sim_qps = stream_len as f64 / (io_metrics.elapsed_ms / 1e3).max(1e-12);
                    let point = Point {
                        nodes,
                        theta,
                        mpl,
                        shared_nothing,
                        disks: placement.total_disks(),
                        workers,
                        queries: stream_len,
                        qps: sim_qps,
                        wall_qps: metrics.queries_per_sec(),
                        node_imbalance: io_metrics.node_imbalance(),
                        predicted_node_imbalance: predicted,
                        net_ms: io_metrics.total_net_ms(),
                        net_pages: io_metrics.total_net_pages(),
                        migration_rate: metrics.migration_rate(),
                        cache_hit_rate: io_metrics.cache_hit_rate(),
                        sim_elapsed_ms: io_metrics.elapsed_ms,
                    };
                    bench_support::print_row(
                        &[
                            nodes.to_string(),
                            format!("{theta:.1}"),
                            mpl.to_string(),
                            if shared_nothing { "nothing" } else { "disk" }.to_string(),
                            format!("{:.0}", point.qps),
                            format!("{:.0}", point.wall_qps),
                            format!("{:.2}x", point.node_imbalance),
                            format!("{:.2}x", point.predicted_node_imbalance),
                            format!("{:.1}", point.net_ms),
                            format!("{:.2}", point.migration_rate),
                            format!("{:.2}", point.cache_hit_rate),
                        ],
                        &widths,
                    );
                    if shared_nothing && mpl == mpl_axis[0] {
                        if theta == 1.0 && nodes == 1 {
                            qps_1node = point.qps;
                        }
                        if theta == 1.0 && nodes == 8 {
                            qps_8nodes = point.qps;
                        }
                        if nodes == 8 {
                            gate_imbalances[usize::from(theta == 1.0)] = point.node_imbalance;
                        }
                        // The predicted-vs-measured per-node share table at
                        // the flagship 4-node Zipf point.
                        if theta == 1.0 && nodes == 4 {
                            let profile = io_metrics.node_load_profile();
                            let total: f64 = profile.iter().sum();
                            for (node, (&measured, &predicted)) in
                                profile.iter().zip(&predicted_shares).enumerate()
                            {
                                node_shares.push((
                                    node as u64,
                                    predicted,
                                    measured / total.max(1e-12),
                                ));
                            }
                        }
                    }
                    points.push(point);
                }

                // GATE 3 (bit-identity): every query's result is identical
                // across node counts and strategies — compare against the
                // 1-node shared-disk reference of this θ.
                let outcome = engine.execute_stream(
                    &queries,
                    &SchedulerConfig::new(workers, mpl_axis[0])
                        .with_placement(*placement.allocation())
                        .with_io(IoConfig::with_nodes(placement).cache(4_096)),
                );
                let bits: Vec<(u64, Vec<u64>)> = outcome
                    .queries
                    .iter()
                    .map(|q| (q.hits, q.measure_sums.iter().map(|s| s.to_bits()).collect()))
                    .collect();
                match &reference {
                    Some(reference) => assert_eq!(
                        reference, &bits,
                        "bit-identity gate FAILED: {nodes} nodes ({strategy:?}, θ={theta}) \
                         diverged from the 1-node reference"
                    ),
                    None => reference = Some(bits),
                }
            }
        }
        println!();
    }
    println!("gate: results bit-identical across node counts {node_axis:?} and both strategies ✓");

    // Sanity: the shared-nothing interconnect is actually exercised (remote
    // staggered bitmaps ship pages), and shared-disk never pays for it.
    assert!(
        points
            .iter()
            .any(|p| p.shared_nothing && p.nodes > 1 && p.net_pages > 0),
        "no shared-nothing point shipped pages over the interconnect"
    );
    assert!(
        points.iter().all(|p| p.shared_nothing || p.net_pages == 0),
        "a shared-disk point paid interconnect charges"
    );

    // GATE 1 (scale-out): 8 nodes own 8x the disks — the Zipf stream's
    // simulated throughput must rise at least 2x over the 1-node system.
    assert!(
        qps_1node > 0.0 && qps_8nodes > 0.0,
        "gate points missing from the sweep"
    );
    assert!(
        qps_8nodes >= 2.0 * qps_1node,
        "scale-out gate FAILED: 8-node simulated qps {qps_8nodes:.0} is below 2x the 1-node \
         {qps_1node:.0}"
    );
    println!(
        "gate: 8-node simulated qps {qps_8nodes:.0} ≥ 2× 1-node {qps_1node:.0} \
         (scaling {:.2}x) ✓",
        qps_8nodes / qps_1node
    );

    // GATE 2 (balance): Zipf skew must not wreck the per-node balance.
    let (uniform, skewed) = (gate_imbalances[0], gate_imbalances[1]);
    let limit = 1.5;
    assert!(
        uniform > 0.0 && skewed > 0.0,
        "balance gate points missing from the sweep"
    );
    assert!(
        skewed <= limit * uniform,
        "balance gate FAILED: θ=1 per-node imbalance {skewed:.3}x exceeds {limit}× the \
         uniform workload's {uniform:.3}x"
    );
    println!(
        "gate: θ=1 per-node imbalance {skewed:.2}x ≤ {limit}× uniform {uniform:.2}x \
         (ratio {:.2}) ✓",
        skewed / uniform
    );

    match write_json(
        &json_path,
        quick,
        &points,
        &node_shares,
        (qps_1node, qps_8nodes, uniform, skewed),
    ) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
}
