//! Bitmap representation study: plain vs. WAH vs. roaring vs. adaptive,
//! across predicate densities.
//!
//! The paper stores every bitmap verbatim and only notes that the overhead
//! "may be reduced by compressing the bitmaps"; the representation layer
//! makes that concrete.  This binary measures, for predicate-bitmap mixes
//! of different shapes (sparse clustered, sparse random, mid-density
//! random, near-full):
//!
//! * **storage** — total `size_bytes()` of the k predicate bitmaps under
//!   each representation policy, and the adaptive compression ratio,
//! * **intersection throughput** — wall time of the k-way AND under each
//!   policy (plain `Bitmap::and_many`, compressed-domain
//!   `WahBitmap::and_many` and `RoaringBitmap::and_many`, and the
//!   policy-chosen `BitmapRepr::and_many`).
//!
//! A second section measures a real [`FragmentStore`] build and shows the
//! measured ratio flowing into the compressed bitmap-fragment page sizing
//! and the analytic cost model.
//!
//! `--quick` shrinks the bitmap length and repeat count for CI smoke runs.

use std::time::Instant;

use bench_support::{
    measured_store, paper_schema, print_header, print_row, quick_mode, random_bitmap,
    sparse_clustered_bitmap, splitmix,
};
use warehouse::mdhf::StarQuery;
use warehouse::prelude::*;

/// One predicate-mix workload: `k` bitmaps of length `n` with a given shape.
struct Workload {
    name: &'static str,
    bitmaps: Vec<Bitmap>,
}

fn workloads(n: usize, k: usize) -> Vec<Workload> {
    let near_full = |seed: u64| {
        // ~99 % density: long one runs with scattered holes.
        let mut b = Bitmap::ones(n);
        for i in 0..n {
            if splitmix(seed, i as u64).is_multiple_of(100) {
                b.set(i, false);
            }
        }
        b
    };
    vec![
        Workload {
            name: "sparse clustered (~1%)",
            bitmaps: (0..k as u64)
                .map(|s| sparse_clustered_bitmap(n, s))
                .collect(),
        },
        Workload {
            name: "sparse random (~1%)",
            bitmaps: (0..k as u64)
                .map(|s| random_bitmap(n, s + 100, 100))
                .collect(),
        },
        Workload {
            name: "mid random (~50%)",
            bitmaps: (0..k as u64)
                .map(|s| random_bitmap(n, s + 200, 2))
                .collect(),
        },
        Workload {
            name: "near-full (~99%)",
            bitmaps: (0..k as u64).map(near_full).collect(),
        },
    ]
}

fn time_us<R>(repeats: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let quick = quick_mode();
    let n: usize = if quick { 200_000 } else { 2_000_000 };
    let k = 4usize;
    let repeats = if quick { 3 } else { 7 };

    println!("Bitmap representation study: {k}-way intersection over {n}-bit bitmaps");
    println!("(sizes are the sum over the {k} predicate bitmaps; times are best-of-{repeats})");
    println!();
    let widths = [22usize, 10, 10, 10, 10, 8, 9, 9, 9, 9];
    print_header(
        &[
            "workload",
            "plain KiB",
            "wah KiB",
            "roar KiB",
            "adapt KiB",
            "ratio",
            "plain us",
            "wah us",
            "roar us",
            "adapt us",
        ],
        &widths,
    );

    for workload in workloads(n, k) {
        let plain = &workload.bitmaps;
        let wah: Vec<WahBitmap> = plain.iter().map(WahBitmap::compress).collect();
        let roaring: Vec<RoaringBitmap> = plain.iter().map(RoaringBitmap::compress).collect();
        let adaptive: Vec<BitmapRepr> = plain
            .iter()
            .map(|b| BitmapRepr::from_bitmap(b.clone(), RepresentationPolicy::default()))
            .collect();

        let plain_bytes: usize = plain.iter().map(Bitmap::size_bytes).sum();
        let wah_bytes: usize = wah.iter().map(WahBitmap::size_bytes).sum();
        let roaring_bytes: usize = roaring.iter().map(RoaringBitmap::size_bytes).sum();
        let adaptive_bytes: usize = adaptive.iter().map(BitmapRepr::size_bytes).sum();

        let plain_refs: Vec<&Bitmap> = plain.iter().collect();
        let wah_refs: Vec<&WahBitmap> = wah.iter().collect();
        let roaring_refs: Vec<&RoaringBitmap> = roaring.iter().collect();
        let adaptive_refs: Vec<&BitmapRepr> = adaptive.iter().collect();
        let plain_us = time_us(repeats, || Bitmap::and_many(&plain_refs));
        let wah_us = time_us(repeats, || WahBitmap::and_many(&wah_refs));
        let roaring_us = time_us(repeats, || RoaringBitmap::and_many(&roaring_refs));
        let adaptive_us = time_us(repeats, || BitmapRepr::and_many(&adaptive_refs));

        // All three paths agree bit-for-bit.
        assert_eq!(
            WahBitmap::and_many(&wah_refs).decompress(),
            Bitmap::and_many(&plain_refs)
        );
        assert_eq!(
            RoaringBitmap::and_many(&roaring_refs).decompress(),
            Bitmap::and_many(&plain_refs)
        );
        assert_eq!(
            BitmapRepr::and_many(&adaptive_refs).to_plain(),
            Bitmap::and_many(&plain_refs)
        );

        print_row(
            &[
                workload.name.to_string(),
                format!("{:.1}", plain_bytes as f64 / 1024.0),
                format!("{:.1}", wah_bytes as f64 / 1024.0),
                format!("{:.1}", roaring_bytes as f64 / 1024.0),
                format!("{:.1}", adaptive_bytes as f64 / 1024.0),
                format!("{:.2}x", plain_bytes as f64 / adaptive_bytes as f64),
                format!("{plain_us:.0}"),
                format!("{wah_us:.0}"),
                format!("{roaring_us:.0}"),
                format!("{adaptive_us:.0}"),
            ],
            &widths,
        );
    }

    // --- End-to-end: a materialised store's measured compression ratio
    // flowing into page sizing and the analytic cost model. ---
    println!();
    let store = measured_store(true);
    let stats = store.index_stats();
    println!(
        "FragmentStore (adaptive policy): {} bitmaps, {} compressed; {:.1} KiB stored vs {:.1} KiB verbatim ({:.2}x)",
        stats.bitmaps,
        stats.compressed,
        stats.size_bytes as f64 / 1024.0,
        stats.plain_size_bytes as f64 / 1024.0,
        stats.compression_ratio(),
    );
    let logical = store.logical_bitmap_sizing();
    let measured = store.measured_bitmap_sizing();
    println!(
        "Bitmap fragment sizing: {:.3} pages/fragment verbatim -> {:.3} with measured ratio",
        logical.pages_per_fragment(),
        measured.pages_per_fragment(),
    );

    let schema = paper_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let fragmentation = bench_support::f_month_group(&schema);
    let query = StarQuery::exact_match(&schema, "1STORE", &["customer::store"]);
    let verbatim_model = CostModel::new(schema.clone(), catalog.clone());
    let compressed_model = CostModel::new(schema, catalog)
        .with_measured_compression(stats.compression_ratio().max(1.0));
    let (_, verbatim_cost) = verbatim_model.evaluate(&fragmentation, &query);
    let (_, compressed_cost) = compressed_model.evaluate(&fragmentation, &query);
    println!(
        "Analytic 1STORE under F_MonthGroup: {:.0} bitmap pages verbatim -> {:.0} with measured ratio",
        verbatim_cost.bitmap_pages_read, compressed_cost.bitmap_pages_read,
    );
}
