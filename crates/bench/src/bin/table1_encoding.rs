//! Table 1 — hierarchy representation in encoded bitmap join indices.
//!
//! Prints, for the PRODUCT dimension of APB-1, the total number of elements
//! per hierarchy level, the number of elements within their parent, the bits
//! used by the hierarchical encoding, and a sample bit pattern — exactly the
//! rows of Table 1 in the paper.

use bench_support::paper_schema;
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let product_idx = schema
        .dimension_index("product")
        .expect("product dimension");
    let product = &schema.dimensions()[product_idx];
    let hierarchy = product.hierarchy();
    let encoding = HierarchicalEncoding::for_hierarchy(hierarchy);

    println!("Table 1: Hierarchy representation in encoded bitmap join indices (PRODUCT)");
    println!();
    bench_support::print_header(
        &["level", "#total elements", "#within parent", "#bits (log2)"],
        &[10, 16, 15, 13],
    );
    for (i, level) in hierarchy.levels().iter().enumerate() {
        bench_support::print_row(
            &[
                level.name().to_uppercase(),
                hierarchy.cardinality(i).to_string(),
                level.fanout().to_string(),
                encoding.bits_per_level()[i].to_string(),
            ],
            &[10, 16, 15, 13],
        );
    }
    bench_support::print_row(
        &[
            "total".to_string(),
            hierarchy.leaf_cardinality().to_string(),
            String::new(),
            encoding.total_bits().to_string(),
        ],
        &[10, 16, 15, 13],
    );

    println!();
    println!(
        "Sample bit pattern for product code 14399: {:015b}",
        encoding.encode_leaf(14_399)
    );
    println!(
        "Prefix bits needed to locate a GROUP: {} of {} bitmaps",
        encoding.prefix_bits(hierarchy.level_index("group").unwrap()),
        encoding.total_bits()
    );

    // The CUSTOMER dimension for completeness (12 bitmaps in the paper).
    let customer_idx = schema
        .dimension_index("customer")
        .expect("customer dimension");
    let customer_enc =
        HierarchicalEncoding::for_hierarchy(schema.dimensions()[customer_idx].hierarchy());
    println!(
        "Encoded CUSTOMER index: {} bitmaps (paper: 12)",
        customer_enc.total_bits()
    );
    let catalog = IndexCatalog::default_for(&schema);
    println!(
        "Maximum bitmaps over all dimensions: {} (paper: 76)",
        catalog.total_bitmaps()
    );
}
