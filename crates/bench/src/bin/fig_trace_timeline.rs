//! Deterministic trace timeline — the observability counterpart of the
//! multi-user experiments.
//!
//! Runs a Zipf-skewed multi-user stream (the skew-resilience workload) with
//! [`ObsConfig`] enabled across an MPL sweep and demonstrates the `obs`
//! layer end to end:
//!
//! * every point's trace-derived totals are **reconciled exactly** against
//!   the engine's own aggregates — rows scanned, steal counts, per-worker
//!   simulated busy time (bitwise) and per-disk cache hits/misses against
//!   [`ExecMetrics`] / [`IoMetrics`],
//! * the **deterministic section** (query lifecycle, scans, disk service on
//!   the simulated clock) is asserted bit-identical — same canonical events,
//!   same digest — across a re-run and across worker counts,
//! * the reference point's trace is written as Chrome `trace_event` JSON
//!   (default `trace.json`, override with `--trace <path>`; load it in
//!   <https://ui.perfetto.dev> or `about:tracing`), one track per query,
//!   worker and disk,
//! * the sweep's counters and simulated-time histograms are written as a
//!   Prometheus-style text exposition (default `metrics.prom`, override
//!   with `--prom <path>`) with exact p50/p95/p99/p999 of the simulated
//!   query response times.
//!
//! The deterministic section of both artifacts (query lanes, disk lanes,
//! simulated-time histograms and the digest) reproduces exactly on every
//! re-run; the worker lanes and the steal counter record the actual thread
//! interleaving of *this* run, which is the point of the timeline view.

use bench_support::{arg_value, quick_mode};
use warehouse::obs::{chrome_trace_json, EventKind, Exposition, FieldKey, Histogram, Trace, Track};
use warehouse::prelude::*;

/// The scaled-down warehouse of the skew study (`fig_skew_resilience`).
fn study_schema() -> StarSchema {
    schema::apb1::Apb1Config {
        channels: 3,
        months: 12,
        stores: 60,
        product_codes: 120,
        density: 0.3,
        fact_tuple_bytes: 20,
    }
    .build()
}

/// Builds the θ-skewed engine and its matching θ-skewed query stream.
fn engine_and_stream(
    schema: &StarSchema,
    theta: f64,
    rows: usize,
    stream_len: usize,
) -> (StarJoinEngine, Vec<BoundQuery>) {
    let fragmentation = Fragmentation::parse(schema, &["time::month", "product::code"])
        .expect("valid fragmentation attributes");
    let store = FragmentStore::build_skewed(schema, &fragmentation, 2026, theta, rows);
    let engine = StarJoinEngine::new(store);
    let mut stream = InterleavedStream::new(
        schema,
        &[QueryType::OneMonthOneGroup, QueryType::OneCode],
        99,
    )
    .with_value_skew(theta);
    let queries = stream.take_queries(stream_len);
    (engine, queries)
}

/// One traced run of the stream.
fn run(
    engine: &StarJoinEngine,
    queries: &[BoundQuery],
    workers: usize,
    mpl: usize,
    disks: u64,
) -> StreamOutcome {
    let allocation = PhysicalAllocation::round_robin(disks);
    engine.execute_stream(
        queries,
        &SchedulerConfig::new(workers, mpl)
            .with_placement(allocation)
            .with_io(IoConfig::with_allocation(allocation).cache(4_096))
            .with_obs(ObsConfig::enabled()),
    )
}

/// Asserts every trace-derived total reconciles *exactly* with the run's
/// own metrics: rows, steals, per-worker busy time (bitwise) and per-disk
/// cache traffic.  This is the binary's gate — a drifted instrumentation
/// point fails the run.
fn assert_reconciles(outcome: &StreamOutcome, label: &str) -> u64 {
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    let pool = &outcome.metrics.pool;
    assert_eq!(trace.dropped, 0, "{label}: trace ring overflowed");
    assert_eq!(
        trace.sum_field(EventKind::TaskRun, FieldKey::Rows),
        pool.total_rows_scanned(),
        "{label}: rows scanned"
    );
    assert_eq!(
        trace.count_of(EventKind::TaskRun),
        pool.total_fragments(),
        "{label}: task count"
    );
    assert_eq!(
        trace.count_of(EventKind::Steal),
        pool.total_stolen(),
        "{label}: steal count"
    );
    for worker in &pool.workers {
        let traced = trace.sim_ms_on(Track::Worker(worker.worker as u32), EventKind::TaskRun);
        assert_eq!(
            traced.to_bits(),
            worker.sim_io_ms.to_bits(),
            "{label}: worker {} simulated busy time",
            worker.worker
        );
    }
    let io = pool.io.as_ref().expect("I/O layer enabled");
    for disk in &io.per_disk {
        let track = Track::Disk(disk.disk as u32);
        let events: Vec<_> = trace
            .events_of(EventKind::DiskService)
            .filter(|e| e.track == track)
            .collect();
        assert_eq!(
            events.len() as u64,
            disk.scans,
            "{label}: disk {} scans",
            disk.disk
        );
        let hits: u64 = events
            .iter()
            .filter_map(|e| e.field(FieldKey::CacheHits))
            .sum();
        let misses: u64 = events
            .iter()
            .filter_map(|e| e.field(FieldKey::CacheMisses))
            .sum();
        assert_eq!(
            hits, disk.cache_hits,
            "{label}: disk {} cache hits",
            disk.disk
        );
        assert_eq!(
            misses, disk.pages_read,
            "{label}: disk {} pages read",
            disk.disk
        );
    }
    trace.digest()
}

/// Builds the Prometheus exposition from the reference run.
fn exposition(outcome: &StreamOutcome, trace: &Trace, mpl: usize) -> Exposition {
    let pool = &outcome.metrics.pool;
    let mut exposition = Exposition::new();
    exposition.counter(
        "warehouse_rows_scanned_total",
        "Fact rows scanned across the stream.",
        &[],
        pool.total_rows_scanned() as f64,
    );
    exposition.counter(
        "warehouse_fragments_processed_total",
        "Per-fragment tasks executed.",
        &[],
        pool.total_fragments() as f64,
    );
    exposition.counter(
        "warehouse_fragments_stolen_total",
        "Tasks obtained by work stealing.",
        &[],
        pool.total_stolen() as f64,
    );
    exposition.counter(
        "warehouse_queries_completed_total",
        "Queries completed by the scheduler.",
        &[],
        outcome.metrics.queries_completed as f64,
    );
    let io = pool.io.as_ref().expect("I/O layer enabled");
    for disk in &io.per_disk {
        let labels = [("disk", disk.disk.to_string())];
        exposition.counter(
            "warehouse_disk_cache_hits_total",
            "Page requests satisfied by the shared cache, per disk.",
            &labels,
            disk.cache_hits as f64,
        );
        exposition.counter(
            "warehouse_disk_pages_read_total",
            "Pages transferred from the platter, per disk.",
            &labels,
            disk.pages_read as f64,
        );
        exposition.gauge(
            "warehouse_disk_busy_sim_ms",
            "Simulated busy time per disk (ms).",
            &labels,
            disk.busy_ms,
        );
    }
    exposition.gauge(
        "warehouse_scheduler_mpl",
        "Multi-programming level of the reference run.",
        &[],
        mpl as f64,
    );

    // Simulated-time histograms from the deterministic trace sections —
    // exact nearest-rank percentiles, reproducible bit for bit.
    let mut query_us = Histogram::new();
    for event in trace.events_of(EventKind::Query) {
        query_us.record(event.dur_us);
    }
    let mut scan_us = Histogram::new();
    for event in trace.events_of(EventKind::Scan) {
        scan_us.record(event.dur_us);
    }
    exposition.histogram(
        "warehouse_query_sim_us",
        "Simulated query response time (us, admission to last charge).",
        &query_us,
    );
    exposition.histogram(
        "warehouse_scan_sim_us",
        "Simulated fragment-scan service time (us).",
        &scan_us,
    );
    for (name, value) in [
        ("p50", query_us.p50()),
        ("p95", query_us.p95()),
        ("p99", query_us.p99()),
        ("p999", query_us.p999()),
    ] {
        exposition.gauge(
            "warehouse_query_sim_us_quantile",
            "Exact percentiles of the simulated query response time (us).",
            &[("quantile", name.to_string())],
            value as f64,
        );
    }
    exposition
}

fn main() {
    let quick = quick_mode();
    let trace_path = arg_value("--trace").unwrap_or_else(|| "trace.json".to_string());
    let prom_path = arg_value("--prom").unwrap_or_else(|| "metrics.prom".to_string());
    let mpl_axis: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let rows = if quick { 60_000 } else { 150_000 };
    let stream_len = if quick { 48 } else { 128 };
    let (disks, workers, theta, reference_mpl) = (7u64, 4usize, 1.0f64, 4usize);

    let schema = study_schema();
    let (engine, queries) = engine_and_stream(&schema, theta, rows, stream_len);
    println!(
        "Deterministic trace timeline: Zipf(θ={theta}) stream, {disks} disks, {workers} workers"
    );
    println!(
        "warehouse: {rows} rows, F_MonthCode fragmentation; stream: {stream_len} \
         1MONTH1GROUP/1CODE queries"
    );
    println!();

    let widths = [4usize, 8, 10, 10, 9, 8, 7, 18];
    bench_support::print_header(
        &[
            "mpl", "events", "det", "rows", "tasks", "steals", "cache", "digest",
        ],
        &widths,
    );
    let mut reference: Option<StreamOutcome> = None;
    for &mpl in mpl_axis {
        let outcome = run(&engine, &queries, workers, mpl, disks);
        let digest = assert_reconciles(&outcome, &format!("mpl {mpl}"));
        let trace = outcome.trace.as_ref().expect("tracing enabled");
        let io = outcome.metrics.pool.io.as_ref().expect("I/O metrics");
        bench_support::print_row(
            &[
                mpl.to_string(),
                trace.events.len().to_string(),
                trace.deterministic_events().len().to_string(),
                outcome.metrics.pool.total_rows_scanned().to_string(),
                outcome.metrics.pool.total_fragments().to_string(),
                outcome.metrics.pool.total_stolen().to_string(),
                format!("{:.2}", io.cache_hit_rate()),
                format!("{digest:016x}"),
            ],
            &widths,
        );
        if mpl == reference_mpl {
            reference = Some(outcome);
        }
    }
    let reference = reference.expect("reference MPL in the sweep");
    let reference_trace = reference.trace.as_ref().expect("tracing enabled");
    println!();

    // Determinism gate: the deterministic section is bit-identical across a
    // re-run and across worker counts (the thread-attributed section moves,
    // the simulated-clock section must not).
    let reference_events = reference_trace.deterministic_events();
    for rerun_workers in [workers, 1, 2, 8] {
        let again = run(&engine, &queries, rerun_workers, reference_mpl, disks);
        assert_reconciles(&again, &format!("{rerun_workers}-worker re-run"));
        let trace = again.trace.as_ref().expect("tracing enabled");
        assert_eq!(
            trace.digest(),
            reference_trace.digest(),
            "deterministic-section digest moved on the {rerun_workers}-worker re-run"
        );
        assert_eq!(
            trace.deterministic_events(),
            reference_events,
            "deterministic events moved on the {rerun_workers}-worker re-run"
        );
    }
    println!(
        "gate: trace totals reconcile with ExecMetrics/IoMetrics at every MPL, and the \
         deterministic section is bit-identical across re-runs and worker counts ✓"
    );

    let chrome = chrome_trace_json(reference_trace);
    if let Err(err) = std::fs::write(&trace_path, &chrome) {
        eprintln!("failed to write {trace_path}: {err}");
        std::process::exit(1);
    }
    println!(
        "wrote {trace_path} ({} events; load it in https://ui.perfetto.dev)",
        reference_trace.events.len()
    );

    let prom = exposition(&reference, reference_trace, reference_mpl).render();
    if let Err(err) = std::fs::write(&prom_path, &prom) {
        eprintln!("failed to write {prom_path}: {err}");
        std::process::exit(1);
    }
    println!("wrote {prom_path} ({} lines)", prom.lines().count());
}
