//! Table 6 — fragmentation parameters for experiment 3 (§6.3).
//!
//! For the three fragmentations `F_MonthGroup`, `F_MonthClass`, `F_MonthCode`
//! prints the number of fragments and the bitmap-fragment size in pages
//! (with the prefetch-rounded value in parentheses, as in the paper), plus
//! the admissibility verdict of the §4.4 thresholds.

use bench_support::{paper_schema, EXPERIMENT3_FRAGMENTATIONS};
use warehouse::mdhf::{check_fragmentation, FragmentationConstraints};
use warehouse::prelude::*;
use warehouse::schema::PageSizing;

fn main() {
    let schema = paper_schema();
    let sizing = PageSizing::new(&schema);
    let catalog = IndexCatalog::default_for(&schema);
    let constraints = FragmentationConstraints::default();

    println!("Table 6: Fragmentation parameters for experiment 3");
    println!("(paper: 11,520 / 23,040 / 345,600 fragments; 4.9 (5) / 2.5 (3) / 0.16 (1) pages)");
    println!();
    bench_support::print_header(
        &[
            "fragmentation",
            "#fragments",
            "bitmap frag [pages]",
            "bitmaps kept",
            "admissible",
        ],
        &[14, 12, 20, 13, 11],
    );
    for (name, product_level) in EXPERIMENT3_FRAGMENTATIONS {
        let f = bench_support::month_product_fragmentation(&schema, product_level);
        let pages = sizing.bitmap_fragment_pages(f.fragment_count());
        let whole = (pages.ceil() as u64).max(1);
        let report = check_fragmentation(&schema, &catalog, &constraints, &f);
        bench_support::print_row(
            &[
                name.to_string(),
                f.fragment_count().to_string(),
                format!("{pages:.2} ({whole})"),
                report.bitmaps_required.to_string(),
                if report.is_admissible() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
            &[14, 12, 20, 13, 11],
        );
    }

    println!();
    println!(
        "n_max threshold (PrefetchGran = 4, 4 KB pages): {} fragments",
        constraints.n_max(&sizing)
    );
}
