//! Table 3 — analytic I/O characteristics of query 1STORE.
//!
//! Evaluates the analytic cost model for query 1STORE under the optimal
//! fragmentation `F_opt = {customer::store}` and the unsupporting
//! fragmentation `F_nosupp = F_MonthGroup = {time::month, product::group}`,
//! reporting fragments, fact I/O, bitmap I/O and total I/O volume as in
//! Table 3.

use bench_support::paper_schema;
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);
    let query = StarQuery::exact_match(&schema, "1STORE", &["customer::store"]);

    let cases = [
        ("F_opt = {customer::store}", vec!["customer::store"]),
        (
            "F_nosupp = {time::month, product::group}",
            vec!["time::month", "product::group"],
        ),
    ];

    println!("Table 3: I/O characteristics for query 1STORE (analytic cost model)");
    println!("(paper: F_opt -> 1 fragment, 795 fact I/Os, no bitmap I/O, 25 MB;");
    println!("        F_nosupp -> 11,520 fragments, 5,189,760 fact pages, 691,200 bitmap pages, 31,075 MB)");
    println!();
    bench_support::print_header(
        &[
            "fragmentation",
            "#fragments",
            "fact I/O ops",
            "fact pages",
            "bitmap pages",
            "total MB",
        ],
        &[42, 11, 13, 13, 13, 11],
    );
    for (label, spec) in cases {
        let fragmentation = Fragmentation::parse(&schema, &spec).expect("valid fragmentation");
        let (classification, cost) = model.evaluate(&fragmentation, &query);
        bench_support::print_row(
            &[
                label.to_string(),
                cost.fragments_to_process.to_string(),
                format!("{:.0}", cost.fact_io_ops),
                format!("{:.0}", cost.fact_pages_read),
                format!("{:.0}", cost.bitmap_pages_read),
                format!("{:.0}", cost.total_megabytes(4_096)),
            ],
            &[42, 11, 13, 13, 13, 11],
        );
        println!(
            "    query class: {:?}, I/O class: {:?}, bitmaps per fragment: {}",
            classification.query_class, classification.io_class, cost.bitmaps_per_fragment
        );
    }

    // Improvement factor — the paper's "several orders of magnitude".
    let f_opt = Fragmentation::parse(&schema, &["customer::store"]).unwrap();
    let f_nosupp = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let (_, opt) = model.evaluate(&f_opt, &query);
    let (_, nosupp) = model.evaluate(&f_nosupp, &query);
    println!();
    println!(
        "Improvement of F_opt over F_nosupp: {:.0}x in total pages",
        nosupp.total_pages() / opt.total_pages()
    );
}
