//! Figure 3 (measured) — wall-clock speedup of the 1STORE query on the
//! *physical* execution engine, printed next to the analytic bound and the
//! SIMPAD-simulated speedup.
//!
//! The repository validates the paper's intra-query parallelism claim three
//! ways; this binary puts them side by side for a 1STORE-class query (not
//! supported by `F_MonthGroup`, so it scans every fragment — the paper's
//! disk-bound worst case):
//!
//! * **measured** — the `exec` engine on a materialised store, best-of-3
//!   wall clock per worker count, speedup vs. 1 worker,
//! * **analytic** — the load-balance bound `F / ceil(F/w)` for `F` equal-size
//!   fragments on `w` workers (the paper's uniform-distribution assumption),
//! * **simulated** — SIMPAD on the full-size APB-1 configuration, scaling
//!   nodes and disks together (`d = 4p`, the Figure 3 `p = d/4` series).
//!
//! `--quick` shrinks the store and the worker sweep for CI smoke runs.

use bench_support::{f_month_group, measured_store, paper_schema, quick_mode, run_point};
use warehouse::prelude::*;
use warehouse::workload::QueryType;

/// Runs `f` `runs` times and returns the metrics of the fastest run, so the
/// reported wall time and the per-worker breakdown describe the same run.
fn best_of(runs: usize, mut f: impl FnMut() -> ExecMetrics) -> ExecMetrics {
    (0..runs)
        .map(|_| f())
        .min_by_key(|metrics| metrics.wall)
        .expect("at least one run")
}

fn main() {
    let quick = quick_mode();
    let worker_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let repeats = if quick { 2 } else { 3 };

    let engine = StarJoinEngine::new(measured_store(quick));
    let schema = engine.store().schema().clone();
    let fragments = engine.store().fragmentation().fragment_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("Figure 3 (measured): 1STORE on the physical execution engine");
    println!(
        "store: {} rows in {} fragments under {}; machine: {} core(s)",
        engine.store().total_rows(),
        fragments,
        engine.store().fragmentation().describe(&schema),
        cores
    );
    println!();

    let bound = BoundQuery::new(
        &schema,
        QueryType::OneStore.to_star_query(&schema),
        vec![17],
    );
    let plan = engine.plan(&bound);
    assert_eq!(plan.fragments().len() as u64, fragments);

    // Simulated pillar: the full-size APB-1 warehouse, nodes and disks scaled
    // together (d = 4p) as in the Figure 3 "p = d/4" series.
    let full_schema = paper_schema();
    let full_fragmentation = f_month_group(&full_schema);
    let simulate = |workers: usize| {
        let config = SimConfig::for_speedup_point(4 * workers as u64, workers);
        run_point(
            &full_schema,
            &full_fragmentation,
            config,
            QueryType::OneStore,
            1,
        )
        .mean_response_secs()
    };

    let widths = [7usize, 10, 9, 15, 19];
    bench_support::print_header(
        &[
            "workers",
            "wall [ms]",
            "measured",
            "analytic bound",
            "simulated (SIMPAD)",
        ],
        &widths,
    );

    let mut measured_baseline: Option<f64> = None;
    let mut simulated_baseline: Option<f64> = None;
    let mut four_worker_metrics: Option<ExecMetrics> = None;
    for &workers in worker_counts {
        let metrics = best_of(repeats, || {
            engine
                .execute_plan(
                    &plan,
                    &ExecConfig {
                        workers,
                        ..ExecConfig::default()
                    },
                )
                .metrics
        });
        if workers == 4 {
            four_worker_metrics = Some(metrics.clone());
        }
        let wall_ms = metrics.wall.as_secs_f64() * 1e3;
        let measured = measured_baseline.map_or(1.0, |b| b / wall_ms);
        measured_baseline.get_or_insert(wall_ms);

        let analytic = fragments as f64 / fragments.div_ceil(workers as u64) as f64;

        let sim_secs = simulate(workers);
        let simulated = simulated_baseline.map_or(1.0, |b| b / sim_secs);
        simulated_baseline.get_or_insert(sim_secs);

        bench_support::print_row(
            &[
                workers.to_string(),
                format!("{wall_ms:.1}"),
                format!("{measured:.2}x"),
                format!("{analytic:.2}x"),
                format!("{simulated:.2}x"),
            ],
            &widths,
        );
    }

    if let Some(metrics) = four_worker_metrics {
        println!();
        println!(
            "4-worker pool: {} fragments processed ({} stolen), load imbalance {:.2}",
            metrics.total_fragments(),
            metrics.total_stolen(),
            metrics.load_imbalance()
        );
        for w in &metrics.workers {
            println!(
                "  worker {}: {:>5} fragments ({:>3} stolen), {:>9} rows, busy {:>8.1} ms",
                w.worker,
                w.fragments_processed,
                w.fragments_stolen,
                w.rows_scanned,
                w.busy.as_secs_f64() * 1e3
            );
        }
    }

    println!();
    println!(
        "Expected shape: measured speedup tracks the analytic bound up to the \
         machine's core count (flat on a single-core box); the simulated column \
         reproduces the paper's near-linear Figure 3 scaling of the full-size system."
    );
}
