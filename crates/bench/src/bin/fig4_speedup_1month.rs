//! Figure 4 — response times and speed-up of the 1MONTH query.
//!
//! 1MONTH is optimally supported by `F_MonthGroup` (480 fragments, no bitmap
//! access) and CPU-bound: its response time depends on the number of
//! processors, not disks.  The sweep varies p for d = 20/60/100 with t = 4
//! and additionally shows the t = 5 fix for the d = 100, p = 50 batching
//! artefact discussed in §6.1.
//!
//! `--quick` restricts the sweep to d = 100.

use bench_support::{f_month_group, paper_schema, quick_mode, run_point};
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let fragmentation = f_month_group(&schema);
    let queries = 1;
    let disk_counts: &[u64] = if quick_mode() { &[100] } else { &[20, 60, 100] };

    println!("Figure 4: 1MONTH under F_MonthGroup (t = 4), single-user");
    println!();
    bench_support::print_header(
        &["d", "p", "t", "response [s]", "speed-up vs p-min"],
        &[5, 5, 4, 13, 18],
    );

    for &d in disk_counts {
        let processors: Vec<usize> = [d / 20, d / 10, d / 5, d / 4, d / 2]
            .iter()
            .map(|&p| (p as usize).max(1))
            .collect();
        let mut baseline: Option<(usize, f64)> = None;
        for &p in &processors {
            let config = SimConfig {
                subqueries_per_node: 4,
                ..SimConfig::for_speedup_point(d, p)
            };
            let summary = run_point(
                &schema,
                &fragmentation,
                config,
                QueryType::OneMonth,
                queries,
            );
            let secs = summary.mean_response_secs();
            let speedup = baseline.map_or(1.0, |(p0, b)| b / secs * p0 as f64);
            if baseline.is_none() {
                baseline = Some((p, secs));
            }
            bench_support::print_row(
                &[
                    d.to_string(),
                    p.to_string(),
                    "4".to_string(),
                    format!("{secs:.1}"),
                    format!("{speedup:.1}"),
                ],
                &[5, 5, 4, 13, 18],
            );
        }
    }

    // The §6.1 discretisation artefact: with p = 50 and t = 4 the 480
    // subqueries run in batches of 200/200/80; t = 5 gives 250/230 and
    // restores linear speed-up.
    println!();
    println!("d = 100, p = 50 batching artefact:");
    for t in [4usize, 5] {
        let config = SimConfig {
            disks: 100,
            nodes: 50,
            subqueries_per_node: t,
            ..SimConfig::default()
        };
        let summary = run_point(
            &schema,
            &fragmentation,
            config,
            QueryType::OneMonth,
            queries,
        );
        println!("  t = {t}: response {:.1} s", summary.mean_response_secs());
    }
    println!();
    println!(
        "Expected shape (paper): response time depends on p, not d; near-linear \
         speed-up in p; t = 5 is faster than t = 4 at p = 50."
    );
}
