//! Figure 5 — response-time effects of parallel bitmap I/O.
//!
//! 1STORE under `F_MonthGroup` on the 100-disk / 20-node configuration, for a
//! varying number of concurrent subqueries per node (t = 1 … 13), once with
//! the bitmap fragments of a subquery read in parallel from their staggered
//! disks and once strictly serially.  The paper reports improvements of up to
//! 13 % for parallel bitmap I/O and a response-time plateau once t·p reaches
//! the number of disks.
//!
//! `--quick` restricts the sweep to t ∈ {1, 5, 9, 13}.

use bench_support::{f_month_group, paper_schema, quick_mode, run_point};
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let fragmentation = f_month_group(&schema);
    let queries = 1;
    let t_values: Vec<usize> = if quick_mode() {
        vec![1, 5, 9, 13]
    } else {
        vec![1, 3, 5, 7, 9, 11, 13]
    };

    println!("Figure 5: 1STORE, d = 100, p = 20, parallel vs non-parallel bitmap I/O");
    println!();
    bench_support::print_header(
        &[
            "t (per node)",
            "total subqueries",
            "parallel I/O [s]",
            "serial I/O [s]",
            "gain [%]",
        ],
        &[12, 16, 16, 15, 9],
    );

    for &t in &t_values {
        let mut results = [0.0f64; 2];
        for (idx, parallel) in [(0usize, true), (1usize, false)] {
            let config = SimConfig {
                disks: 100,
                nodes: 20,
                subqueries_per_node: t,
                parallel_bitmap_io: parallel,
                ..SimConfig::default()
            };
            let summary = run_point(
                &schema,
                &fragmentation,
                config,
                QueryType::OneStore,
                queries,
            );
            results[idx] = summary.mean_response_secs();
        }
        let gain = (results[1] - results[0]) / results[1] * 100.0;
        bench_support::print_row(
            &[
                t.to_string(),
                (t * 20).to_string(),
                format!("{:.1}", results[0]),
                format!("{:.1}", results[1]),
                format!("{gain:.1}"),
            ],
            &[12, 16, 16, 15, 9],
        );
    }
    println!();
    println!(
        "Expected shape (paper): response time drops ~linearly until t*p ~ d (t ~ 5), \
         then flattens; parallel bitmap I/O is ahead by up to ~13%, shrinking for large t."
    );
}
