//! Table 4 — simulation parameter settings.
//!
//! Prints the default simulator configuration, which reproduces Table 4 of
//! the paper (disk devices, instruction costs, buffer manager, processing
//! nodes, network).

use warehouse::prelude::*;

fn main() {
    let c = SimConfig::default();
    println!("Table 4: Parameter settings used in simulations");
    println!();
    println!("disk devices");
    println!("  number (d)                    {}", c.disks);
    println!("  avg. seek time                {} ms", c.disk.avg_seek_ms);
    println!(
        "  settle + controller delay     {} ms per access",
        c.disk.settle_controller_ms
    );
    println!(
        "  transfer                      {} ms per page",
        c.disk.per_page_ms
    );
    println!();
    println!("processing nodes");
    println!("  number (p)                    {}", c.nodes);
    println!("  CPU speed                     {} MIPS", c.cpu_mips);
    println!(
        "  subqueries per node (t)       {} (variable)",
        c.subqueries_per_node
    );
    println!();
    println!("no. of instructions");
    println!(
        "  initiate/plan query           {}",
        c.instructions.initiate_query
    );
    println!(
        "  terminate query               {}",
        c.instructions.terminate_query
    );
    println!(
        "  initiate/plan subquery        {}",
        c.instructions.initiate_subquery
    );
    println!(
        "  terminate subquery            {}",
        c.instructions.terminate_subquery
    );
    println!(
        "  read page                     {}",
        c.instructions.read_page
    );
    println!(
        "  process bitmap page           {}",
        c.instructions.process_bitmap_page
    );
    println!(
        "  extract table row             {}",
        c.instructions.extract_row
    );
    println!(
        "  aggregate table row           {}",
        c.instructions.aggregate_row
    );
    println!(
        "  send message                  {} + #B",
        c.instructions.send_message
    );
    println!(
        "  receive message               {} + #B",
        c.instructions.receive_message
    );
    println!();
    println!("buffer manager");
    println!("  page size                     {} B", c.page_size);
    println!(
        "  buffer size fact table        {} pages",
        c.fact_buffer_pages
    );
    println!(
        "  buffer size bitmaps           {} pages",
        c.bitmap_buffer_pages
    );
    println!(
        "  prefetch size fact table      {} pages",
        c.fact_prefetch_pages
    );
    println!(
        "  prefetch size bitmaps         {} pages",
        c.bitmap_prefetch_pages
    );
    println!();
    println!("network");
    println!(
        "  connection speed              {} Mbit/s",
        c.network_bits_per_sec / 1e6
    );
    println!(
        "  message size (small)          {} B",
        c.small_message_bytes
    );
    println!("  message size (large)          1 page ({} B)", c.page_size);
    println!();
    println!("Table 5: Hardware parameters for speed-up experiments (d, p):");
    for (d, p) in SimConfig::speedup_grid() {
        print!("  ({d}, {p})");
    }
    println!();
}
