//! Compares the current CI run's `BENCH_*.json` outputs against a baseline
//! (the previous successful run's artifacts, or the committed
//! `bench/baseline/` snapshot on a first run) and fails on a performance
//! regression.
//!
//! ```text
//! bench_regression_check --baseline <dir|file> --current <dir|file> \
//!     [--tolerance 0.15]
//! ```
//!
//! For every `BENCH_*.json` present in `--current`, the checker looks for a
//! file of the same name under `--baseline` (missing baselines are skipped
//! with a note — a brand-new bench cannot regress).  From each file it
//! extracts every numeric field and aggregates the *comparable metrics*:
//!
//! * **higher-is-better** — fields named `qps` (mean over all occurrences),
//! * **lower-is-better** — the latency fields `latency_mean_ms`,
//!   `latency_p95_ms`, `latency_p99_ms` and `latency_p999_ms`, so the gate
//!   covers the tail of the distribution, not just its centre.
//!
//! A metric regresses when it moves against its direction by more than the
//! tolerance (default ±15 %).  Aggregating to per-file means keeps the gate
//! robust against single noisy sweep points while still catching the
//! across-the-board slowdowns a perf regression produces.  The process
//! exits non-zero if any metric in any file regressed.
//!
//! JSON parsing is a minimal scanner for `"key": <number>` pairs — every
//! compared file is produced by this repository's own bench binaries, so a
//! full JSON parser (and the dependency it would drag in) is unnecessary.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench_support::arg_value;

/// Metric fields where larger current values are better.
const HIGHER_IS_BETTER: [&str; 1] = ["qps"];
/// Metric fields where smaller current values are better.
const LOWER_IS_BETTER: [&str; 4] = [
    "latency_mean_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "latency_p999_ms",
];

/// Extracts every `"key": <number>` pair from a JSON document, in order.
fn numeric_fields(json: &str) -> Vec<(String, f64)> {
    let mut fields = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        // A quoted string: find its end (bench JSON never escapes quotes).
        let start = i + 1;
        let Some(len) = json[start..].find('"') else {
            break;
        };
        let key = &json[start..start + len];
        i = start + len + 1;
        // Only `"key":` followed by a numeric literal counts.
        let rest = json[i..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        if end > 0 {
            if let Ok(value) = rest[..end].parse::<f64>() {
                fields.push((key.to_string(), value));
            }
        }
    }
    fields
}

/// Mean of every occurrence of each comparable metric in a document.
fn metric_means(json: &str) -> BTreeMap<String, f64> {
    let mut sums: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for (key, value) in numeric_fields(json) {
        if HIGHER_IS_BETTER.contains(&key.as_str()) || LOWER_IS_BETTER.contains(&key.as_str()) {
            let entry = sums.entry(key).or_insert((0.0, 0));
            entry.0 += value;
            entry.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(key, (sum, count))| (key, sum / count as f64))
        .collect()
}

/// One metric comparison: `Ok` row text, or `Err` regression description.
fn compare_metric(
    key: &str,
    baseline: f64,
    current: f64,
    tolerance: f64,
) -> Result<String, String> {
    let higher_better = HIGHER_IS_BETTER.contains(&key);
    let change = if baseline.abs() > f64::EPSILON {
        current / baseline - 1.0
    } else {
        0.0
    };
    let regressed = if higher_better {
        current < baseline * (1.0 - tolerance)
    } else {
        current > baseline * (1.0 + tolerance)
    };
    let row = format!(
        "{key:>16}: baseline {baseline:>12.3}  current {current:>12.3}  ({change:+.1}%)",
        change = change * 100.0
    );
    if regressed {
        Err(format!(
            "{row}  REGRESSION (direction: {}, tolerance ±{:.0}%)",
            if higher_better {
                "higher is better"
            } else {
                "lower is better"
            },
            tolerance * 100.0
        ))
    } else {
        Ok(row)
    }
}

/// Compares one current file against its baseline; returns regressions.
fn compare_files(baseline_json: &str, current_json: &str, tolerance: f64) -> Vec<String> {
    let baseline = metric_means(baseline_json);
    let current = metric_means(current_json);
    let mut regressions = Vec::new();
    for (key, &current_value) in &current {
        let Some(&baseline_value) = baseline.get(key) else {
            println!("{key:>16}: no baseline value — skipped (new metric)");
            continue;
        };
        match compare_metric(key, baseline_value, current_value, tolerance) {
            Ok(row) => println!("{row}"),
            Err(row) => {
                println!("{row}");
                regressions.push(row);
            }
        }
    }
    // A metric the baseline gated but the current run no longer emits is a
    // regression too — otherwise renaming or dropping a field silently
    // stops the gate from gating it.
    for key in baseline.keys() {
        if !current.contains_key(key) {
            let row = format!(
                "{key:>16}: present in the baseline but MISSING from the current run — \
                 the gate can no longer check it"
            );
            println!("{row}");
            regressions.push(row);
        }
    }
    regressions
}

/// The `BENCH_*.json` files under `path` (or `path` itself when a file).
fn bench_files(path: &Path) -> Vec<PathBuf> {
    if path.is_file() {
        return vec![path.to_path_buf()];
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() -> ExitCode {
    let baseline_dir =
        PathBuf::from(arg_value("--baseline").unwrap_or_else(|| "bench/baseline".to_string()));
    let current_dir = PathBuf::from(arg_value("--current").unwrap_or_else(|| ".".to_string()));
    let tolerance: f64 =
        arg_value("--tolerance").map_or(0.15, |t| t.parse().expect("tolerance must be a number"));

    let current_files = bench_files(&current_dir);
    if current_files.is_empty() {
        eprintln!(
            "no BENCH_*.json files under {} — nothing to compare",
            current_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut regressions = Vec::new();
    for current_path in &current_files {
        let name = current_path.file_name().expect("bench file has a name");
        let baseline_path = if baseline_dir.is_file() {
            baseline_dir.clone()
        } else {
            baseline_dir.join(name)
        };
        println!("== {} ==", name.to_string_lossy());
        if !baseline_path.exists() {
            println!(
                "   no baseline at {} — skipped (new bench)",
                baseline_path.display()
            );
            continue;
        }
        let baseline_json =
            std::fs::read_to_string(&baseline_path).expect("baseline file readable");
        let current_json = std::fs::read_to_string(current_path).expect("current file readable");
        regressions.extend(compare_files(&baseline_json, &current_json, tolerance));
        println!();
    }

    if regressions.is_empty() {
        println!(
            "bench regression check passed (tolerance ±{:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench regression check FAILED: {} regressed metric(s); add `[bench-skip]` to the \
             commit message to bypass deliberately",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "bench": "multiuser_throughput",
      "quick": true,
      "points": [
        {"workers": 2, "mpl": 1, "qps": 100.0, "latency_mean_ms": 4.0, "latency_p95_ms": 9.0,
         "latency_p99_ms": 14.0, "latency_p999_ms": 19.0},
        {"workers": 2, "mpl": 4, "qps": 300.0, "latency_mean_ms": 6.0, "latency_p95_ms": 11.0,
         "latency_p99_ms": 16.0, "latency_p999_ms": 21.0}
      ]
    }"#;

    /// Rescales every occurrence of `key` in `json` by `factor`.
    fn scaled(json: &str, key: &str, factor: f64) -> String {
        let mut out = String::new();
        let needle = format!("\"{key}\": ");
        let mut rest = json;
        while let Some(at) = rest.find(&needle) {
            let value_start = at + needle.len();
            out.push_str(&rest[..value_start]);
            rest = &rest[value_start..];
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
                .unwrap_or(rest.len());
            let value: f64 = rest[..end].parse().unwrap();
            out.push_str(&format!("{}", value * factor));
            rest = &rest[end..];
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn extracts_numeric_fields_only() {
        let fields = numeric_fields(SAMPLE);
        assert!(fields.contains(&("qps".to_string(), 100.0)));
        assert!(fields.contains(&("latency_p95_ms".to_string(), 11.0)));
        // String values ("bench") and booleans are not numeric fields.
        assert!(fields.iter().all(|(k, _)| k != "bench" && k != "quick"));
    }

    #[test]
    fn means_aggregate_comparable_metrics() {
        let means = metric_means(SAMPLE);
        assert_eq!(means["qps"], 200.0);
        assert_eq!(means["latency_mean_ms"], 5.0);
        assert_eq!(means["latency_p95_ms"], 10.0);
        // Non-metric numerics (workers, mpl) are not aggregated.
        assert!(!means.contains_key("workers"));
    }

    #[test]
    fn identical_runs_pass() {
        assert!(compare_files(SAMPLE, SAMPLE, 0.15).is_empty());
    }

    #[test]
    fn noise_within_tolerance_passes() {
        let wobbly = scaled(SAMPLE, "qps", 0.9);
        assert!(compare_files(SAMPLE, &wobbly, 0.15).is_empty());
    }

    #[test]
    fn a_30_percent_throughput_drop_fails() {
        let regressed = scaled(SAMPLE, "qps", 0.7);
        let failures = compare_files(SAMPLE, &regressed, 0.15);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("qps"));
        assert!(failures[0].contains("REGRESSION"));
    }

    #[test]
    fn a_30_percent_latency_increase_fails() {
        let regressed = scaled(SAMPLE, "latency_mean_ms", 1.3);
        let failures = compare_files(SAMPLE, &regressed, 0.15);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("latency_mean_ms"));
    }

    #[test]
    fn a_30_percent_tail_latency_increase_fails() {
        // A run whose p99/p999 blow up while mean and p95 hold steady —
        // the shape a lock-convoy or overflow-path regression produces —
        // must still fail the gate.
        let regressed = scaled(
            &scaled(SAMPLE, "latency_p99_ms", 1.3),
            "latency_p999_ms",
            1.4,
        );
        let failures = compare_files(SAMPLE, &regressed, 0.15);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("latency_p99_ms")));
        assert!(failures.iter().any(|f| f.contains("latency_p999_ms")));
    }

    #[test]
    fn dropping_a_gated_metric_fails() {
        // Renaming `qps` away must not silently stop the throughput gate.
        let renamed = SAMPLE.replace("\"qps\"", "\"throughput\"");
        let failures = compare_files(SAMPLE, &renamed, 0.15);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("qps"));
        assert!(failures[0].contains("MISSING"));
    }

    #[test]
    fn improvements_never_fail() {
        let faster = scaled(&scaled(SAMPLE, "qps", 2.0), "latency_mean_ms", 0.5);
        assert!(compare_files(SAMPLE, &faster, 0.15).is_empty());
    }
}
