//! Cold vs. warm persistent-storage throughput — the measured counterpart
//! of the simulated cache experiments, on the real `FGMT` file format.
//!
//! The simulated-I/O benchmarks charge fragment scans against an analytic
//! disk model behind a simulated LRU page cache.  This binary runs the same
//! deterministic query workload against an *actual* fragment file through
//! [`Warehouse::open`]:
//!
//! 1. the measured store is serialised to a temporary `FGMT` file,
//! 2. a **cold** pass runs the workload on a freshly opened warehouse
//!    (every page faults into the buffer pool),
//! 3. a **warm** pass repeats the workload on the same warehouse (pages and
//!    decoded fragments are resident),
//! 4. the same two passes run under the simulated disk subsystem on the
//!    in-memory backing, cross-validating two pillars:
//!    * the file-backed results are **bit-identical** to the in-memory ones,
//!    * the warm-pass page-pool hit rate is at least the simulated cache's
//!      hit rate on the identical workload (the real cache can only do
//!      better: it also holds decoded fragments),
//!
//!    and reporting the [`DiskModel`]-predicted cold makespan next to the
//!    measured cold wall time.
//!
//! [`DiskModel`]: warehouse::storage::DiskModel
//!
//! Results are written as JSON (default `BENCH_storage_coldwarm.json`,
//! override with `--json <path>`) for the CI perf-trajectory artifacts and
//! the bench-regression gate.  The page-pool counters are deterministic for
//! a given workload and cache size; only the wall-clock fields are noisy.

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench_support::{arg_value, measured_store_fragmented, quick_mode};
use warehouse::prelude::*;

/// One measured pass (cold or warm), kept for the JSON report.
struct Pass {
    phase: &'static str,
    queries: usize,
    wall_ms: f64,
    qps: f64,
    page_hit_rate: f64,
    decoded_hits: u64,
    segment_reads: u64,
    bytes_read: u64,
}

/// A uniquely named file in the system temp directory, removed on drop.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempFile(std::env::temp_dir().join(format!(
            "fgmt_coldwarm_{}_{tag}_{n}.fgmt",
            std::process::id()
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs the workload once on a file-backed session and snapshots the pass:
/// wall time plus the *delta* of the cumulative file-I/O counters.
fn run_file_pass(
    phase: &'static str,
    warehouse: &Warehouse,
    queries: &[BoundQuery],
    workers: usize,
    expected: &[QueryResult],
) -> Pass {
    let before = warehouse
        .source()
        .file_metrics()
        .expect("file-backed warehouse");
    let session = warehouse.session().workers(workers).build();
    let start = Instant::now();
    for (query, expect) in queries.iter().zip(expected) {
        let result = session.execute(query);
        assert_eq!(
            (result.hits, &result.measure_sums),
            (expect.hits, &expect.measure_sums),
            "file-backed {phase} pass diverged from the in-memory result"
        );
    }
    let wall = start.elapsed();
    let after = warehouse
        .source()
        .file_metrics()
        .expect("file-backed warehouse");

    let hits = after.pool.hits - before.pool.hits;
    let misses = after.pool.misses - before.pool.misses;
    let decoded_hits = after.decoded_cache_hits - before.decoded_cache_hits;
    // Fetches served from the decoded-fragment cache never touch the page
    // pool: a pass with no page requests at all is a perfect cache pass.
    let page_hit_rate = if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let wall_ms = wall.as_secs_f64() * 1e3;
    Pass {
        phase,
        queries: queries.len(),
        wall_ms,
        qps: queries.len() as f64 / wall.as_secs_f64().max(f64::EPSILON),
        page_hit_rate,
        decoded_hits,
        segment_reads: after.segment_reads - before.segment_reads,
        bytes_read: after.bytes_read - before.bytes_read,
    }
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    file_bytes: u64,
    passes: &[Pass],
    sim_cold_hit_rate: f64,
    sim_warm_hit_rate: f64,
    predicted_cold_io_ms: f64,
    measured_cold_wall_ms: f64,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"storage_coldwarm\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"cores\": {},", cores());
    let _ = writeln!(out, "  \"file_bytes\": {file_bytes},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in passes.iter().enumerate() {
        let comma = if i + 1 < passes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"phase\": \"{}\", \"queries\": {}, \"wall_ms\": {}, \"qps\": {}, \
             \"page_hit_rate\": {}, \"decoded_hits\": {}, \"segment_reads\": {}, \
             \"bytes_read\": {}}}{comma}",
            p.phase,
            p.queries,
            json_number(p.wall_ms),
            json_number(p.qps),
            json_number(p.page_hit_rate),
            p.decoded_hits,
            p.segment_reads,
            p.bytes_read,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"sim_cold_hit_rate\": {},",
        json_number(sim_cold_hit_rate)
    );
    let _ = writeln!(
        out,
        "  \"sim_warm_hit_rate\": {},",
        json_number(sim_warm_hit_rate)
    );
    let _ = writeln!(
        out,
        "  \"predicted_cold_io_ms\": {},",
        json_number(predicted_cold_io_ms)
    );
    let _ = writeln!(
        out,
        "  \"measured_cold_wall_ms\": {}",
        json_number(measured_cold_wall_ms)
    );
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let json_path =
        arg_value("--json").unwrap_or_else(|| "BENCH_storage_coldwarm.json".to_string());
    let workers = cores().clamp(1, 4);
    let stream_len = if quick { 64 } else { 256 };

    println!("Persistent storage: cold vs. warm query throughput on an FGMT fragment file");
    println!("machine: {} core(s); pool: {workers} worker(s)", cores());
    println!();

    // The measured warehouse under the paper's standard F_MonthGroup-style
    // fragmentation, serialised once to a temporary fragment file.
    let store = measured_store_fragmented(quick, &["time::month", "product::group"]);
    let schema = store.schema().clone();
    let guard = TempFile::new(if quick { "quick" } else { "full" });
    warehouse::exec::write_store(&store, &guard.0).expect("serialise the fragment store");
    let file_bytes = std::fs::metadata(&guard.0)
        .expect("stat the fragment file")
        .len();
    println!(
        "store: {} rows in {} fragments -> {} ({file_bytes} bytes)",
        store.total_rows(),
        store.fragment_count(),
        guard.0.display()
    );

    // A deterministic workload of single-fragment queries: each pass touches
    // the same fragments in the same order, so the page-pool counters are
    // exactly reproducible.
    let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 2024);
    let queries = generator.batch(stream_len);

    // In-memory reference results — the file-backed passes must reproduce
    // these bit for bit.
    let memory_engine = StarJoinEngine::new(store);
    let serial = ExecConfig::serial();
    let expected: Vec<QueryResult> = queries
        .iter()
        .map(|q| memory_engine.execute(q, &serial))
        .collect();

    // Simulated pillar: the identical two-pass workload charged against the
    // DiskModel-based simulated subsystem with a page cache sized like the
    // file store's pool, sharing one SimulatedIo so cache state carries from
    // the cold pass into the warm one.
    let io_config = IoConfig::with_disks(4).cache(FileStoreOptions::default().cache_pages);
    let sim_io = SimulatedIo::new(io_config, &schema);
    let sim_config = ExecConfig {
        workers,
        ..ExecConfig::default()
    };
    for query in &queries {
        let plan = memory_engine.plan(query);
        let _ = memory_engine.execute_plan_with_io(&plan, &sim_config, &sim_io);
    }
    let sim_cold = sim_io.metrics();
    let predicted_cold_io_ms = sim_cold.elapsed_ms;
    for query in &queries {
        let plan = memory_engine.plan(query);
        let _ = memory_engine.execute_plan_with_io(&plan, &sim_config, &sim_io);
    }
    let sim_total = sim_io.metrics();
    let sim_cold_hit_rate = sim_cold.cache_hit_rate();
    let warm_hits: u64 = sim_total.cache.hits - sim_cold.cache.hits;
    let warm_misses: u64 = sim_total.cache.misses - sim_cold.cache.misses;
    let sim_warm_hit_rate = if warm_hits + warm_misses == 0 {
        1.0
    } else {
        warm_hits as f64 / (warm_hits + warm_misses) as f64
    };

    // Measured pillar: the same workload through the session API over the
    // real file, cold then warm on the same open warehouse.
    let warehouse = Warehouse::open(&guard.0).expect("reopen the fragment file");
    let cold = run_file_pass("cold", &warehouse, &queries, workers, &expected);
    let warm = run_file_pass("warm", &warehouse, &queries, workers, &expected);

    let widths = [6usize, 8, 11, 10, 10, 9, 9, 12];
    bench_support::print_header(
        &[
            "phase",
            "queries",
            "wall [ms]",
            "qps",
            "page hit",
            "decoded",
            "seg rd",
            "bytes",
        ],
        &widths,
    );
    for pass in [&cold, &warm] {
        bench_support::print_row(
            &[
                pass.phase.to_string(),
                pass.queries.to_string(),
                format!("{:.3}", pass.wall_ms),
                format!("{:.0}", pass.qps),
                format!("{:.3}", pass.page_hit_rate),
                pass.decoded_hits.to_string(),
                pass.segment_reads.to_string(),
                pass.bytes_read.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "simulated cache on the same workload: cold hit rate {sim_cold_hit_rate:.3}, \
         warm hit rate {sim_warm_hit_rate:.3}"
    );
    println!(
        "DiskModel-predicted cold makespan {predicted_cold_io_ms:.3} ms \
         (simulated 4-disk subsystem) vs. measured cold wall {:.3} ms",
        cold.wall_ms
    );
    println!();

    let cold_wall_ms = cold.wall_ms;
    let warm_page_hit_rate = warm.page_hit_rate;
    let warm_segment_reads = warm.segment_reads;
    match write_json(
        &json_path,
        quick,
        file_bytes,
        &[cold, warm],
        sim_cold_hit_rate,
        sim_warm_hit_rate,
        predicted_cold_io_ms,
        cold_wall_ms,
    ) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }

    // The acceptance gate: after a cold pass the real buffer pool must be at
    // least as warm as the simulated cache on the identical workload — it
    // additionally keeps whole decoded fragments, so it can only do better.
    assert!(
        warm_page_hit_rate >= sim_warm_hit_rate,
        "warm file-backed page-pool hit rate {warm_page_hit_rate:.3} fell below the simulated \
         cache's warm hit rate {sim_warm_hit_rate:.3} on the same workload"
    );
    assert!(
        warm_segment_reads == 0,
        "warm pass re-read {warm_segment_reads} segments from the file; the pool should hold \
         the whole working set ({file_bytes} bytes)"
    );
    println!(
        "gate: warm page-pool hit rate {warm_page_hit_rate:.3} >= \
         simulated warm hit rate {sim_warm_hit_rate:.3} ✓"
    );
}
