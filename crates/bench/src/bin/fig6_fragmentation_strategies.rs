//! Figure 6 — impact of the fragmentation strategy on query processing.
//!
//! Compares the three two-dimensional fragmentations `F_MonthGroup`,
//! `F_MonthClass` and `F_MonthCode` (§6.3, Table 6) for two query types:
//!
//! * `1CODE1QUARTER` benefits from finer product fragmentation: it always
//!   touches 3 fragments, which shrink from group- to code-granularity until
//!   no bitmap access is needed at all;
//! * `1STORE` shows the inverse behaviour: the fine-grained `F_MonthCode`
//!   collapses bitmap fragments below one page and explodes the bitmap I/O.
//!
//! The x-axis of the paper's figure is the total degree of parallelism
//! (t · p); we sweep t on the fixed 100-disk / 20-node configuration.
//!
//! `--quick` restricts 1STORE to `F_MonthGroup`/`F_MonthClass` and fewer
//! parallelism points (the `F_MonthCode` runs simulate 345 600 subqueries).

use bench_support::{
    month_product_fragmentation, paper_schema, quick_mode, run_point, EXPERIMENT3_FRAGMENTATIONS,
};
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let quick = quick_mode();

    // --- 1CODE1QUARTER ------------------------------------------------------
    println!("Figure 6 (left): 1CODE1QUARTER, d = 100, p = 20");
    println!();
    bench_support::print_header(
        &["fragmentation", "parallelism", "response [s]"],
        &[14, 11, 13],
    );
    for (name, product_level) in EXPERIMENT3_FRAGMENTATIONS {
        let fragmentation = month_product_fragmentation(&schema, product_level);
        for parallelism in [1usize, 3, 5] {
            let config = SimConfig {
                disks: 100,
                nodes: 20,
                subqueries_per_node: parallelism,
                ..SimConfig::default()
            };
            let summary = run_point(
                &schema,
                &fragmentation,
                config,
                QueryType::OneCodeOneQuarter,
                2,
            );
            bench_support::print_row(
                &[
                    name.to_string(),
                    parallelism.to_string(),
                    format!("{:.2}", summary.mean_response_secs()),
                ],
                &[14, 11, 13],
            );
        }
    }
    println!();
    println!(
        "Expected shape (paper): best for F_MonthCode (no bitmaps, only relevant rows), \
         about 2x worse for F_MonthClass, about 4x worse for F_MonthGroup; optimum already at ~3 subqueries."
    );
    println!();

    // --- 1STORE --------------------------------------------------------------
    println!("Figure 6 (right): 1STORE, d = 100, p = 20");
    println!();
    bench_support::print_header(
        &["fragmentation", "t", "total subq", "response [s]"],
        &[14, 4, 11, 13],
    );
    let store_fragmentations: &[(&str, &str)] = if quick {
        &EXPERIMENT3_FRAGMENTATIONS[..2]
    } else {
        &EXPERIMENT3_FRAGMENTATIONS
    };
    let t_values: &[usize] = if quick { &[2, 5] } else { &[1, 2, 4, 6, 8] };
    for (name, product_level) in store_fragmentations {
        let fragmentation = month_product_fragmentation(&schema, product_level);
        for &t in t_values {
            let config = SimConfig {
                disks: 100,
                nodes: 20,
                subqueries_per_node: t,
                ..SimConfig::default()
            };
            let summary = run_point(&schema, &fragmentation, config, QueryType::OneStore, 1);
            bench_support::print_row(
                &[
                    (*name).to_string(),
                    t.to_string(),
                    (t * 20).to_string(),
                    format!("{:.1}", summary.mean_response_secs()),
                ],
                &[14, 4, 11, 13],
            );
        }
    }
    println!();
    println!(
        "Expected shape (paper): 1STORE behaves inversely — F_MonthCode is clearly the \
         worst (bitmap fragments of 1/6 page, >4 million bitmap pages); response times \
         are two to three orders of magnitude above 1CODE1QUARTER."
    );
}
