//! Figure 3 — response times and speed-up of the 1STORE query.
//!
//! Sweeps the Table 5 hardware grid (d = 20/60/100 disks, p = d/20 … d/2
//! processors, t = d/p subqueries per node) under the fragmentation
//! `F_MonthGroup` and reports average response time and the speed-up relative
//! to the smallest configuration of the same processor ratio, exactly as in
//! Figure 3.  1STORE is not supported by the fragmentation, touches all
//! 11 520 fragments and is heavily disk-bound: response times scale with the
//! number of disks.
//!
//! `--quick` restricts the sweep to the p = d/4 series.

use bench_support::{f_month_group, paper_schema, quick_mode, run_point};
use warehouse::prelude::*;

fn main() {
    let schema = paper_schema();
    let fragmentation = f_month_group(&schema);
    let queries = 1;
    let divisors: &[u64] = if quick_mode() {
        &[4]
    } else {
        &[20, 10, 5, 4, 2]
    };

    println!("Figure 3: 1STORE under F_MonthGroup (t = d/p), single-user");
    println!();
    bench_support::print_header(
        &["p = d/x", "d", "p", "t", "response [s]", "speed-up vs d=20"],
        &[8, 5, 5, 5, 13, 17],
    );

    for &divisor in divisors {
        let mut baseline: Option<f64> = None;
        for d in [20u64, 60, 100] {
            let p = (d / divisor).max(1) as usize;
            let config = SimConfig::for_speedup_point(d, p);
            let summary = run_point(
                &schema,
                &fragmentation,
                config,
                QueryType::OneStore,
                queries,
            );
            let secs = summary.mean_response_secs();
            let speedup = baseline.map_or(1.0, |b| b / secs);
            if baseline.is_none() {
                baseline = Some(secs);
            }
            bench_support::print_row(
                &[
                    format!("d/{divisor}"),
                    d.to_string(),
                    p.to_string(),
                    config.subqueries_per_node.to_string(),
                    format!("{secs:.1}"),
                    format!("{speedup:.2}"),
                ],
                &[8, 5, 5, 5, 13, 17],
            );
        }
    }
    println!();
    println!(
        "Expected shape (paper): response time depends almost only on d; \
         speed-up from 20 to 100 disks is (slightly super-) linear, i.e. >= ~5x."
    );
}
