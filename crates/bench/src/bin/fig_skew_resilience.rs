//! Skew resilience — per-disk balance of the simulated I/O layer under
//! Zipf-skewed data and query streams.
//!
//! The paper's central allocation claim is that MDHF + round-robin disk
//! placement keeps a parallel star join balanced.  Its experiments assume
//! *uniform* data; this study stresses the claim where it is hardest: the
//! fact table's keys and the query parameters both follow Zipf(θ)
//! distributions, so a handful of hot fragments own most rows *and* draw
//! most scans.  The sweep crosses
//!
//! * **skew factor** θ ∈ {0, 0.5, 1.0} (uniform → classic Zipf),
//! * **disks** (prime counts, per the paper's §4.6 declustering advice),
//! * **workers** (the shared scheduler pool),
//!
//! running a mixed `1MONTH1GROUP` + `1CODE` stream (MPL 4) against a
//! selectivity-skewed [`FragmentStore`] with the simulated disk subsystem
//! active: per-disk FIFO queues, a shared LRU page cache, skew-aware
//! stealing and a wall throttle so simulated I/O shows up in measured time.
//!
//! Each point reports measured queries/sec, the per-disk imbalance (busiest
//! disk's simulated busy time over the mean — deterministic, reproducible
//! bit for bit), worker-pool imbalance, cache hit rate and steal rate, and
//! is cross-validated against two independent predictions:
//!
//! * **analytic** — `allocation::analysis::disk_load_shares` over the
//!   stream's per-fragment page weights (distinct pages for the cached
//!   subsystem, pages × scans for the uncached one),
//! * **simulated** — SIMPAD's per-disk utilisations on the full-size APB-1
//!   system under the same disk counts (uniform workload: the paper's
//!   balanced reference).
//!
//! **Gate** (deterministic): with the cache and skew-aware stealing active
//! on 7 disks, measured per-disk imbalance under θ = 1.0 must stay within
//! 1.5× the uniform-workload imbalance — the skew-resilience claim of this
//! subsystem.  Results are written as JSON (default
//! `BENCH_skew_resilience.json`, override with `--json <path>`) for the CI
//! `bench-regression` gate.

use std::fmt::Write as _;

use bench_support::{arg_value, quick_mode};
use warehouse::allocation::{disk_load_shares, load_imbalance};
use warehouse::prelude::*;
use warehouse::simpad;
use warehouse::workload::QueryStream;

/// One measured sweep point, kept for the JSON report.
struct Point {
    theta: f64,
    disks: u64,
    workers: usize,
    queries: usize,
    qps: f64,
    latency_mean_ms: f64,
    disk_imbalance: f64,
    predicted_imbalance: f64,
    nocache_imbalance: f64,
    predicted_nocache_imbalance: f64,
    worker_imbalance: f64,
    cache_hit_rate: f64,
    steal_rate: f64,
    sim_elapsed_ms: f64,
}

/// The scaled-down warehouse of the skew study.
fn study_schema() -> StarSchema {
    schema::apb1::Apb1Config {
        channels: 3,
        months: 12,
        stores: 60,
        product_codes: 120,
        density: 0.3,
        fact_tuple_bytes: 20,
    }
    .build()
}

/// Builds the θ-skewed engine and its matching θ-skewed query stream.
fn engine_and_stream(
    schema: &StarSchema,
    theta: f64,
    rows: usize,
    stream_len: usize,
) -> (StarJoinEngine, Vec<BoundQuery>) {
    let fragmentation = Fragmentation::parse(schema, &["time::month", "product::code"])
        .expect("valid fragmentation attributes");
    let store = FragmentStore::build_skewed(schema, &fragmentation, 2026, theta, rows);
    let engine = StarJoinEngine::new(store);
    let mut stream = InterleavedStream::new(
        schema,
        &[QueryType::OneMonthOneGroup, QueryType::OneCode],
        99,
    )
    .with_value_skew(theta);
    let queries = stream.take_queries(stream_len);
    (engine, queries)
}

/// Analytic service-time estimate of one uncached fragment scan, in ms:
/// one average seek, then settle + transfer per prefetch granule — the
/// same disk parameters and granule size the simulated subsystem charges,
/// read straight from its configuration so they cannot drift apart.
fn scan_service_ms(
    engine: &StarJoinEngine,
    io: &IoConfig,
    fragment: u64,
    rows_per_page: u64,
) -> f64 {
    let rows = engine.store().fragment(fragment).len() as u64;
    if rows == 0 {
        return 0.0;
    }
    let pages = rows.div_ceil(rows_per_page);
    let granules = pages.div_ceil(io.fact_prefetch_pages.max(1));
    io.disk.avg_seek_ms
        + granules as f64 * io.disk.settle_controller_ms
        + pages as f64 * io.disk.per_page_ms
}

/// Analytic per-disk imbalance predictions for the stream: `(cached, cold)`.
///
/// The cached subsystem reads every touched fragment once (repeat scans hit
/// the LRU cache), so its weights are the distinct scans' service times;
/// the uncached one pays the service time on every scan.
fn predicted_imbalances(
    engine: &StarJoinEngine,
    queries: &[BoundQuery],
    io: &IoConfig,
    rows_per_page: u64,
) -> (f64, f64) {
    let n = engine.store().fragment_count() as usize;
    let mut distinct = vec![0.0f64; n];
    let mut per_scan = vec![0.0f64; n];
    for query in queries {
        for &fragment in engine.plan(query).fragments() {
            let service = scan_service_ms(engine, io, fragment, rows_per_page);
            distinct[fragment as usize] = service;
            per_scan[fragment as usize] += service;
        }
    }
    (
        load_imbalance(&disk_load_shares(&io.allocation, &distinct)),
        load_imbalance(&disk_load_shares(&io.allocation, &per_scan)),
    )
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    points: &[Point],
    simpad_series: &[(u64, f64)],
    steal_ab: &[(bool, f64, f64)],
    gate: (f64, f64, f64),
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"skew_resilience\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"theta\": {}, \"disks\": {}, \"workers\": {}, \"queries\": {}, \
             \"qps\": {}, \"latency_mean_ms\": {}, \"disk_imbalance\": {}, \
             \"predicted_imbalance\": {}, \"nocache_imbalance\": {}, \
             \"predicted_nocache_imbalance\": {}, \"worker_imbalance\": {}, \
             \"cache_hit_rate\": {}, \"steal_rate\": {}, \"sim_elapsed_ms\": {}}}{comma}",
            json_number(p.theta),
            p.disks,
            p.workers,
            p.queries,
            json_number(p.qps),
            json_number(p.latency_mean_ms),
            json_number(p.disk_imbalance),
            json_number(p.predicted_imbalance),
            json_number(p.nocache_imbalance),
            json_number(p.predicted_nocache_imbalance),
            json_number(p.worker_imbalance),
            json_number(p.cache_hit_rate),
            json_number(p.steal_rate),
            json_number(p.sim_elapsed_ms),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"simpad_uniform\": [");
    for (i, (disks, imbalance)) in simpad_series.iter().enumerate() {
        let comma = if i + 1 < simpad_series.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"disks\": {disks}, \"sim_disk_imbalance\": {}}}{comma}",
            json_number(*imbalance)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"steal_ab\": [");
    for (i, (by_io, worker_imbalance, steal_rate)) in steal_ab.iter().enumerate() {
        let comma = if i + 1 < steal_ab.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"steal_by_io\": {by_io}, \"worker_imbalance\": {}, \"steal_rate\": {}}}{comma}",
            json_number(*worker_imbalance),
            json_number(*steal_rate)
        );
    }
    let _ = writeln!(out, "  ],");
    let (uniform, skewed, limit) = gate;
    let _ = writeln!(
        out,
        "  \"gate\": {{\"uniform_imbalance\": {}, \"zipf1_imbalance\": {}, \"ratio\": {}, \
         \"limit\": {}}}",
        json_number(uniform),
        json_number(skewed),
        json_number(skewed / uniform),
        json_number(limit)
    );
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_skew_resilience.json".to_string());
    let thetas = [0.0f64, 0.5, 1.0];
    let disks_axis: &[u64] = if quick { &[7] } else { &[3, 7, 13] };
    let workers_axis: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let rows = if quick { 80_000 } else { 200_000 };
    let stream_len = if quick { 64 } else { 160 };
    let mpl = 4;
    // 20 µs of wall time per simulated millisecond: enough for skewed I/O
    // to dominate task cost without slowing the sweep.
    let throttle_ns = 20_000;

    let schema = study_schema();
    let sizing = schema::PageSizing::new(&schema);
    let rows_per_page = sizing.fact_tuples_per_page();
    println!("Skew resilience: Zipf data + query skew on the simulated disk subsystem");
    println!(
        "warehouse: {rows} rows, F_MonthCode fragmentation; stream: {stream_len} \
         1MONTH1GROUP/1CODE queries at MPL {mpl}"
    );
    println!();

    let widths = [6usize, 5, 7, 9, 10, 9, 9, 10, 10, 7, 7];
    bench_support::print_header(
        &[
            "theta",
            "disks",
            "workers",
            "qps",
            "mean [ms]",
            "disk imb",
            "pred imb",
            "cold imb",
            "pred cold",
            "cache",
            "steal",
        ],
        &widths,
    );

    let mut points: Vec<Point> = Vec::new();
    // The gate's two deterministic measurements at disks = 7, cache on.
    let mut gate_imbalances: [f64; 2] = [0.0, 0.0];
    let mut steal_ab: Vec<(bool, f64, f64)> = Vec::new();

    for &theta in &thetas {
        let (engine, queries) = engine_and_stream(&schema, theta, rows, stream_len);
        for &disks in disks_axis {
            let allocation = PhysicalAllocation::round_robin(disks);
            let (predicted_imbalance, predicted_cold) = predicted_imbalances(
                &engine,
                &queries,
                &IoConfig::with_allocation(allocation),
                rows_per_page,
            );

            // The uncached reference: every scan hits the platter, so the
            // hot fragments' repeat scans pile onto their disks.
            let nocache = engine
                .execute_stream(
                    &queries,
                    &SchedulerConfig::new(4, mpl)
                        .with_placement(allocation)
                        .with_io(IoConfig::with_allocation(allocation).cache(0)),
                )
                .metrics;
            let nocache_imbalance = nocache.pool.disk_imbalance();

            for &workers in workers_axis {
                let io = IoConfig::with_allocation(allocation)
                    .cache(4_096)
                    .throttle(throttle_ns);
                let metrics = engine
                    .execute_stream(
                        &queries,
                        &SchedulerConfig::new(workers, mpl)
                            .with_placement(allocation)
                            .with_io(io),
                    )
                    .metrics;
                let io_metrics = metrics.pool.io.as_ref().expect("I/O metrics");
                let point = Point {
                    theta,
                    disks,
                    workers,
                    queries: stream_len,
                    qps: metrics.queries_per_sec(),
                    latency_mean_ms: metrics.latency_mean().as_secs_f64() * 1e3,
                    disk_imbalance: io_metrics.disk_imbalance(),
                    predicted_imbalance,
                    nocache_imbalance,
                    predicted_nocache_imbalance: predicted_cold,
                    worker_imbalance: metrics.pool.load_imbalance(),
                    cache_hit_rate: io_metrics.cache_hit_rate(),
                    steal_rate: metrics.steal_rate(),
                    sim_elapsed_ms: io_metrics.elapsed_ms,
                };
                bench_support::print_row(
                    &[
                        format!("{theta:.1}"),
                        disks.to_string(),
                        workers.to_string(),
                        format!("{:.0}", point.qps),
                        format!("{:.3}", point.latency_mean_ms),
                        format!("{:.2}x", point.disk_imbalance),
                        format!("{:.2}x", point.predicted_imbalance),
                        format!("{:.2}x", point.nocache_imbalance),
                        format!("{:.2}x", point.predicted_nocache_imbalance),
                        format!("{:.2}", point.cache_hit_rate),
                        format!("{:.2}", point.steal_rate),
                    ],
                    &widths,
                );
                if disks == 7 && workers == workers_axis[workers_axis.len() - 1] {
                    if theta == 0.0 {
                        gate_imbalances[0] = point.disk_imbalance;
                    } else if theta == 1.0 {
                        gate_imbalances[1] = point.disk_imbalance;
                    }
                }
                points.push(point);
            }

            // The skew-aware vs deque-length stealing A/B at the gate
            // point, run uncached so every hot scan stays expensive and
            // the steal-weight policy keeps mattering for the whole run.
            if theta == 1.0 && disks == 7 {
                for by_io in [true, false] {
                    let mut io = IoConfig::with_allocation(allocation)
                        .cache(0)
                        .throttle(throttle_ns);
                    if !by_io {
                        io = io.steal_by_queue_len();
                    }
                    let metrics = engine
                        .execute_stream(
                            &queries,
                            &SchedulerConfig::new(4, mpl)
                                .with_placement(allocation)
                                .with_io(io),
                        )
                        .metrics;
                    steal_ab.push((by_io, metrics.pool.load_imbalance(), metrics.steal_rate()));
                }
            }
        }
        println!();
    }

    // Analytic cross-validation: the deterministic measured imbalances must
    // track the page-weight predictions for every point (the measured
    // number folds in seek/settle constants, hence the generous band).
    for p in &points {
        let cached_ratio = p.disk_imbalance / p.predicted_imbalance;
        assert!(
            (0.6..=1.6).contains(&cached_ratio),
            "cached imbalance {:.2}x diverges from analytic {:.2}x (θ={}, d={})",
            p.disk_imbalance,
            p.predicted_imbalance,
            p.theta,
            p.disks
        );
        let cold_ratio = p.nocache_imbalance / p.predicted_nocache_imbalance;
        assert!(
            (0.6..=1.6).contains(&cold_ratio),
            "uncached imbalance {:.2}x diverges from analytic {:.2}x (θ={}, d={})",
            p.nocache_imbalance,
            p.predicted_nocache_imbalance,
            p.theta,
            p.disks
        );
    }
    println!(
        "analytic cross-check: measured per-disk imbalance tracks the service-time model \
         at every sweep point ✓"
    );

    // SIMPAD cross-check: the full-size system under a *uniform*
    // disk-spanning workload (1MONTH reads every 480th fragment — all
    // disks) is the balanced reference the paper's round robin achieves;
    // measured θ = 0 imbalances must sit in the same near-1 regime.
    let full_schema = bench_support::paper_schema();
    let full_frag = bench_support::f_month_group(&full_schema);
    let mut simpad_series: Vec<(u64, f64)> = Vec::new();
    for &disks in disks_axis {
        let config = SimConfig {
            disks,
            nodes: 4,
            subqueries_per_node: 4,
            ..SimConfig::default()
        };
        let setup = simpad::ExperimentSetup::new(
            full_schema.clone(),
            full_frag.clone(),
            config,
            QueryType::OneMonth,
            2,
        )
        .with_stream(QueryStream::MultiUser { streams: 2 });
        let summary = simpad::run_experiment(&setup);
        let imbalance = summary.disk_imbalance();
        println!(
            "SIMPAD uniform reference, {disks} disks: per-disk imbalance {imbalance:.2}x \
             (utilisation {:.2})",
            summary.disk_utilisation
        );
        assert!(
            imbalance < 1.3,
            "SIMPAD uniform 1MONTH run should be declustered, got {imbalance:.2}x on {disks} disks"
        );
        simpad_series.push((disks, imbalance));
    }

    // The steal-policy A/B (wall-clock, hence report-only).
    for (by_io, worker_imbalance, steal_rate) in &steal_ab {
        println!(
            "steal policy {}: worker imbalance {worker_imbalance:.2}x, steal rate {steal_rate:.2}",
            if *by_io {
                "remaining-I/O (skew-aware)"
            } else {
                "deque-length"
            }
        );
    }

    // THE GATE — deterministic, so no retry needed: under full Zipf skew
    // the cached, skew-aware subsystem keeps per-disk imbalance within
    // 1.5x the uniform workload's.
    let (uniform, skewed) = (gate_imbalances[0], gate_imbalances[1]);
    let limit = 1.5;
    println!();
    assert!(
        uniform > 0.0 && skewed > 0.0,
        "gate points missing from the sweep"
    );
    assert!(
        skewed <= limit * uniform,
        "skew resilience gate FAILED: θ=1.0 per-disk imbalance {skewed:.3}x exceeds {limit}× \
         the uniform workload's {uniform:.3}x"
    );
    println!(
        "gate: θ=1.0 per-disk imbalance {skewed:.2}x ≤ {limit}× uniform {uniform:.2}x \
         (ratio {:.2}) ✓",
        skewed / uniform
    );

    match write_json(
        &json_path,
        quick,
        &points,
        &simpad_series,
        &steal_ab,
        (uniform, skewed, limit),
    ) {
        Ok(()) => println!("wrote {json_path}"),
        Err(err) => {
            eprintln!("failed to write {json_path}: {err}");
            std::process::exit(1);
        }
    }
}
