//! Table 2 — number of fragmentation options under size constraints.
//!
//! Enumerates every candidate point fragmentation of the APB-1 schema and
//! counts, per dimensionality, how many satisfy minimum bitmap-fragment
//! sizes of 1, 4 and 8 pages.  Paper values are printed alongside for
//! comparison.

use bench_support::paper_schema;
use warehouse::mdhf::table2_census;

fn main() {
    let schema = paper_schema();
    let rows = table2_census(&schema);

    // (dims, any, ≥1, ≥4, ≥8) as published in Table 2 (0 marks the total).
    let paper = [
        (1usize, 12usize, 12usize, 12usize, 11usize),
        (2, 47, 37, 31, 27),
        (3, 72, 22, 13, 9),
        (4, 36, 1, 0, 0),
        (0, 167, 72, 56, 47),
    ];

    println!("Table 2: Number of fragmentation options under size constraints");
    println!("(measured with exact fractional bitmap-fragment sizes; paper counts in parentheses)");
    println!();
    bench_support::print_header(
        &["#dims", "any", ">=1 page", ">=4 pages", ">=8 pages"],
        &[6, 12, 12, 12, 12],
    );
    for (dims, p_any, p1, p4, p8) in paper {
        let row = rows
            .iter()
            .find(|r| r.dimensions == dims)
            .expect("census row exists");
        let label = if dims == 0 {
            "total".to_string()
        } else {
            dims.to_string()
        };
        bench_support::print_row(
            &[
                label,
                format!("{} ({p_any})", row.any),
                format!("{} ({p1})", row.at_least_1_page),
                format!("{} ({p4})", row.at_least_4_pages),
                format!("{} ({p8})", row.at_least_8_pages),
            ],
            &[6, 12, 12, 12, 12],
        );
    }
}
