//! `workload` — APB-1-style star-query workload generation.
//!
//! The paper's query generator "creates a series of query structures that are
//! passed to the processing module … For a single simulation, all queries are
//! of the same type (e.g., 1STORE), but specific parameters are chosen at
//! random (e.g., the actual STORE selected)" (§5).
//!
//! * [`queries::QueryType`] — the named query types used in the evaluation
//!   (1STORE, 1MONTH, 1CODE, 1MONTH1GROUP, 1CODE1QUARTER, …) plus arbitrary
//!   custom shapes,
//! * [`bound::BoundQuery`] — a query *instance* with concrete attribute
//!   values, able to compute exactly which fact fragments it touches under a
//!   given fragmentation,
//! * [`generator::QueryGenerator`] — reproducible random instantiation and
//!   single-user / multi-user query streams,
//! * [`generator::InterleavedStream`] — a deterministic multi-type stream in
//!   admission (submission) order, the input of the concurrent scheduler,
//! * [`skew::ZipfSampler`] — deterministic Zipf(θ) value sampling behind
//!   both attribute-value-skewed query streams
//!   ([`QueryGenerator::with_value_skew`]) and selectivity-skewed fact
//!   tables (`exec::FragmentStore::build_skewed`).
//!
//! # Quick start
//!
//! ```
//! use workload::{QueryGenerator, QueryType};
//!
//! let schema = schema::apb1::apb1_scaled_down();
//! let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 7);
//! let query = generator.next_instance();
//! assert_eq!(query.values().len(), 2); // one month, one group — both bound
//!
//! // Generation is reproducible: the same seed yields the same instances.
//! let mut twin = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 7);
//! assert_eq!(query.values(), twin.next_instance().values());
//! ```

#![forbid(unsafe_code)]

pub mod bound;
pub mod generator;
pub mod queries;
pub mod skew;

pub use bound::BoundQuery;
pub use generator::{InterleavedStream, QueryGenerator, QueryStream};
pub use queries::QueryType;
pub use skew::ZipfSampler;
