//! Bound query instances.
//!
//! A [`BoundQuery`] is a star query with concrete attribute values (e.g.
//! *store 815*, *month 7*).  The simulator needs the concrete values because
//! the physical placement of the touched fragments — and therefore disk
//! parallelism and contention — depends on *which* fragments are relevant,
//! not just on how many (§4.6's gcd discussion is exactly about this).

use serde::{Deserialize, Serialize};

use mdhf::{Fragmentation, StarQuery};
use schema::{AttrRef, StarSchema};

/// A star query with one concrete value bound to each predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundQuery {
    query: StarQuery,
    /// Concrete value per predicate, in predicate order.
    values: Vec<u64>,
}

impl BoundQuery {
    /// Binds `values` (one per predicate, in predicate order) to `query`.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the number of predicates
    /// or a value is outside its attribute's cardinality.
    #[must_use]
    pub fn new(schema: &StarSchema, query: StarQuery, values: Vec<u64>) -> Self {
        assert_eq!(
            values.len(),
            query.predicates().len(),
            "one value per predicate required"
        );
        for (pred, &value) in query.predicates().iter().zip(&values) {
            let card = pred.attr.cardinality(schema);
            assert!(
                value < card,
                "value {value} out of range for {} (cardinality {card})",
                pred.attr.display(schema)
            );
        }
        BoundQuery { query, values }
    }

    /// The underlying query shape.
    #[must_use]
    pub fn query(&self) -> &StarQuery {
        &self.query
    }

    /// The bound values, in predicate order.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The bound value for `attr`, if the query references it.
    #[must_use]
    pub fn value_of(&self, attr: AttrRef) -> Option<u64> {
        self.query
            .predicates()
            .iter()
            .position(|p| p.attr == attr)
            .map(|i| self.values[i])
    }

    /// The fact fragments this instance must process under `fragmentation`,
    /// in ascending fragment-number order (the allocation order used by the
    /// scheduler's task list).
    ///
    /// For every fragmentation attribute the relevant coordinate values are:
    ///
    /// * the single ancestor of the bound value if the query references the
    ///   dimension at the same or a finer level,
    /// * the range of descendants of the bound value if the query references
    ///   the dimension at a coarser level,
    /// * all values if the query does not reference the dimension.
    #[must_use]
    pub fn relevant_fragments(
        &self,
        schema: &StarSchema,
        fragmentation: &Fragmentation,
    ) -> Vec<u64> {
        // Per-fragmentation-attribute candidate coordinate values.
        let mut per_attr: Vec<Vec<u64>> = Vec::with_capacity(fragmentation.dimensionality());
        for frag_attr in fragmentation.attrs() {
            let hierarchy = schema.dimensions()[frag_attr.dimension].hierarchy();
            let card_f = frag_attr.cardinality(schema);
            let values = match self
                .query
                .predicates()
                .iter()
                .position(|p| p.attr.dimension == frag_attr.dimension)
            {
                None => (0..card_f).collect(),
                Some(idx) => {
                    let q_attr = self.query.predicates()[idx].attr;
                    let value = self.values[idx];
                    if q_attr.level >= frag_attr.level {
                        // Query level at or below the fragmentation level:
                        // the bound value belongs to exactly one ancestor.
                        let per = hierarchy.elements_per_ancestor(q_attr.level, frag_attr.level);
                        vec![value / per]
                    } else {
                        // Query level above the fragmentation level: the bound
                        // value covers a contiguous range of descendants.
                        let per = hierarchy.elements_per_ancestor(frag_attr.level, q_attr.level);
                        (value * per..(value + 1) * per).collect()
                    }
                }
            };
            per_attr.push(values);
        }

        // Cartesian product of the per-attribute candidate values, converted
        // to fragment numbers (odometer over the candidate lists, last
        // attribute varying fastest).
        let expected: usize = per_attr.iter().map(Vec::len).product();
        let mut fragments = Vec::with_capacity(expected);
        let mut indices = vec![0usize; per_attr.len()];
        'outer: loop {
            let coords = mdhf::FragmentCoordinates(
                indices
                    .iter()
                    .zip(&per_attr)
                    .map(|(&i, vals)| vals[i])
                    .collect(),
            );
            fragments.push(fragmentation.fragment_number(&coords));
            let mut pos = per_attr.len();
            loop {
                if pos == 0 {
                    break 'outer;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < per_attr[pos].len() {
                    break;
                }
                indices[pos] = 0;
                if pos == 0 {
                    break 'outer;
                }
            }
        }
        debug_assert_eq!(fragments.len(), expected);
        fragments.sort_unstable();
        fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryType;
    use schema::apb1::apb1_schema;

    fn month_group(schema: &StarSchema) -> Fragmentation {
        Fragmentation::parse(schema, &["time::month", "product::group"]).unwrap()
    }

    #[test]
    fn one_month_one_group_touches_exactly_one_fragment() {
        let s = apb1_schema();
        let f = month_group(&s);
        let q = QueryType::OneMonthOneGroup.to_star_query(&s);
        // month 5, group 123
        let bound = BoundQuery::new(&s, q, vec![5, 123]);
        let fragments = bound.relevant_fragments(&s, &f);
        assert_eq!(fragments, vec![5 * 480 + 123]);
    }

    #[test]
    fn one_code_touches_one_fragment_per_month_with_stride_480() {
        // §4.6: 1CODE accesses 24 fragments, every 480th one.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = QueryType::OneCode.to_star_query(&s);
        // Product code 65 belongs to group 65 / 30 = 2.
        let bound = BoundQuery::new(&s, q, vec![65]);
        let fragments = bound.relevant_fragments(&s, &f);
        assert_eq!(fragments.len(), 24);
        for (m, &frag) in fragments.iter().enumerate() {
            assert_eq!(frag, m as u64 * 480 + 2);
        }
    }

    #[test]
    fn one_month_touches_the_480_fragments_of_that_month() {
        let s = apb1_schema();
        let f = month_group(&s);
        let q = QueryType::OneMonth.to_star_query(&s);
        let bound = BoundQuery::new(&s, q, vec![7]);
        let fragments = bound.relevant_fragments(&s, &f);
        assert_eq!(fragments.len(), 480);
        assert_eq!(fragments[0], 7 * 480);
        assert_eq!(*fragments.last().unwrap(), 7 * 480 + 479);
    }

    #[test]
    fn one_code_one_quarter_touches_three_fragments() {
        // §4.2 Q4 example: 1 product CODE and 3 MONTHs → 3 fragments.
        let s = apb1_schema();
        let f = month_group(&s);
        let q = QueryType::OneCodeOneQuarter.to_star_query(&s);
        // code 65 (group 2), quarter 3 (months 9, 10, 11)
        let bound = BoundQuery::new(&s, q, vec![65, 3]);
        let fragments = bound.relevant_fragments(&s, &f);
        assert_eq!(fragments, vec![9 * 480 + 2, 10 * 480 + 2, 11 * 480 + 2]);
    }

    #[test]
    fn one_store_touches_every_fragment() {
        let s = apb1_schema();
        let f = month_group(&s);
        let q = QueryType::OneStore.to_star_query(&s);
        let bound = BoundQuery::new(&s, q, vec![815]);
        let fragments = bound.relevant_fragments(&s, &f);
        assert_eq!(fragments.len(), 11_520);
        assert_eq!(fragments[0], 0);
        assert_eq!(*fragments.last().unwrap(), 11_519);
    }

    #[test]
    fn fragment_counts_agree_with_classification() {
        // The bound instance's fragment list must have exactly the size the
        // analytic classification predicts.
        let s = apb1_schema();
        let f = month_group(&s);
        for (qt, values) in [
            (QueryType::OneStore, vec![0]),
            (QueryType::OneMonth, vec![0]),
            (QueryType::OneCode, vec![100]),
            (QueryType::OneMonthOneGroup, vec![3, 17]),
            (QueryType::OneCodeOneQuarter, vec![100, 2]),
            (QueryType::OneQuarter, vec![1]),
            (QueryType::OneGroup, vec![400]),
        ] {
            let q = qt.to_star_query(&s);
            let classification = mdhf::classify(&s, &f, &q);
            let bound = BoundQuery::new(&s, q, values);
            assert_eq!(
                bound.relevant_fragments(&s, &f).len() as u64,
                classification.fragments_to_process,
                "{}",
                qt.name()
            );
        }
    }

    #[test]
    fn value_lookup() {
        let s = apb1_schema();
        let q = QueryType::OneMonthOneGroup.to_star_query(&s);
        let bound = BoundQuery::new(&s, q, vec![5, 123]);
        assert_eq!(bound.value_of(s.attr("time", "month").unwrap()), Some(5));
        assert_eq!(
            bound.value_of(s.attr("product", "group").unwrap()),
            Some(123)
        );
        assert_eq!(bound.value_of(s.attr("customer", "store").unwrap()), None);
        assert_eq!(bound.values(), &[5, 123]);
        assert_eq!(bound.query().name(), "1MONTH1GROUP");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_rejected() {
        let s = apb1_schema();
        let q = QueryType::OneMonth.to_star_query(&s);
        let _ = BoundQuery::new(&s, q, vec![24]);
    }

    #[test]
    #[should_panic(expected = "one value per predicate")]
    fn wrong_value_count_rejected() {
        let s = apb1_schema();
        let q = QueryType::OneMonthOneGroup.to_star_query(&s);
        let _ = BoundQuery::new(&s, q, vec![1]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::queries::QueryType;
    use proptest::prelude::*;
    use schema::apb1::apb1_schema;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For every standard query type and random parameter values, the
        /// bound fragment list has exactly the analytically predicted length,
        /// contains no duplicates and is sorted.
        #[test]
        fn prop_fragment_lists_match_classification(
            type_idx in 0usize..5,
            raw_values in proptest::collection::vec(0u64..20_000, 2),
        ) {
            let s = apb1_schema();
            let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
            let qt = QueryType::standard_mix()[type_idx].clone();
            let q = qt.to_star_query(&s);
            let values: Vec<u64> = q
                .predicates()
                .iter()
                .zip(raw_values.iter().chain(std::iter::repeat(&0)))
                .map(|(p, &raw)| raw % p.attr.cardinality(&s))
                .collect();
            let classification = mdhf::classify(&s, &f, &q);
            let bound = BoundQuery::new(&s, q, values);
            let fragments = bound.relevant_fragments(&s, &f);
            prop_assert_eq!(fragments.len() as u64, classification.fragments_to_process);
            let mut sorted = fragments.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), fragments.len());
            prop_assert!(fragments.iter().all(|&x| x < f.fragment_count()));
        }
    }
}
