//! Zipf-skewed value sampling — the workload side of skew resilience.
//!
//! The paper's experiments assume uniformly distributed query parameters and
//! fact rows; real warehouse workloads are skewed (a few hot products and
//! stores draw most of the queries and most of the rows).  This module
//! provides one deterministic primitive for both kinds of skew:
//!
//! * **attribute-value skew** — [`crate::QueryGenerator::with_value_skew`]
//!   draws bound predicate values from a [`ZipfSampler`] instead of the
//!   uniform distribution, so hot attribute values are queried far more
//!   often,
//! * **selectivity skew** — `exec::FragmentStore::build_skewed` draws fact
//!   row *keys* from per-dimension [`ZipfSampler`]s, so hot values own far
//!   more rows and MDHF fragments differ wildly in size.
//!
//! A skew factor θ = 0 reproduces the uniform distribution exactly; θ = 1 is
//! classic Zipf (value `i` has weight `1 / (i + 1)`).

/// A deterministic sampler over `0..n` with Zipf(θ) weights
/// `w_i ∝ 1 / (i + 1)^θ` (value 0 is the hottest).
///
/// Sampling maps a uniform `u ∈ [0, 1)` through the precomputed cumulative
/// distribution, so the same `u` always yields the same value — no internal
/// RNG state, which keeps every consumer reproducible.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative weights, normalised to end at 1.0; `cdf[i]` is the
    /// probability of drawing a value `<= i`.
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n` with skew factor `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `theta` is negative or not finite.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one value");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "skew factor must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(usize::try_from(n).expect("cardinality fits usize"));
        let mut total = 0.0f64;
        for i in 0..n {
            total += ((i + 1) as f64).powf(-theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf, theta }
    }

    /// The number of values the sampler draws from.
    #[must_use]
    pub fn cardinality(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The configured skew factor θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The probability of drawing value `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn share(&self, i: u64) -> f64 {
        let i = usize::try_from(i).expect("value fits usize");
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// All per-value probabilities, in value order (sums to 1).
    #[must_use]
    pub fn shares(&self) -> Vec<f64> {
        (0..self.cardinality()).map(|i| self.share(i)).collect()
    }

    /// Maps a uniform `u ∈ [0, 1)` to a value (binary search on the CDF).
    /// Out-of-range `u` is clamped.
    #[must_use]
    pub fn sample(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        self.cdf.partition_point(|&c| c <= u) as u64
    }

    /// Maps a raw 64-bit word to a value, using the word's top 53 bits as
    /// the uniform input — the bridge from splitmix-style generators.
    #[must_use]
    pub fn sample_u64(&self, word: u64) -> u64 {
        self.sample((word >> 11) as f64 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_uniform() {
        let s = ZipfSampler::new(8, 0.0);
        for i in 0..8 {
            assert!((s.share(i) - 0.125).abs() < 1e-12, "share({i})");
        }
        // Uniform sampling maps u directly to the value's slot.
        assert_eq!(s.sample(0.0), 0);
        assert_eq!(s.sample(0.13), 1);
        assert_eq!(s.sample(0.99), 7);
    }

    #[test]
    fn theta_one_matches_harmonic_weights() {
        let s = ZipfSampler::new(4, 1.0);
        let h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((s.share(0) - 1.0 / h).abs() < 1e-12);
        assert!((s.share(3) - 0.25 / h).abs() < 1e-12);
        let total: f64 = s.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.cardinality(), 4);
        assert_eq!(s.theta(), 1.0);
    }

    #[test]
    fn skew_concentrates_samples_on_hot_values() {
        let uniform = ZipfSampler::new(100, 0.0);
        let skewed = ZipfSampler::new(100, 1.0);
        // Value 0's share grows from 1 % to ~19 % at θ = 1.
        assert!(skewed.share(0) > 5.0 * uniform.share(0));
        // Hotter values never have smaller shares than colder ones.
        let shares = skewed.shares();
        assert!(shares.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let s = ZipfSampler::new(17, 0.7);
        for word in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 1 << 63] {
            let v = s.sample_u64(word);
            assert!(v < 17);
            assert_eq!(v, s.sample_u64(word));
        }
        // Extreme uniform inputs are clamped, not out of range.
        assert_eq!(s.sample(-1.0), 0);
        assert!(s.sample(2.0) < 17);
    }

    #[test]
    fn empirical_frequencies_follow_the_cdf() {
        let s = ZipfSampler::new(10, 1.0);
        let mut counts = [0u64; 10];
        let n = 100_000u64;
        for i in 0..n {
            // A crude but deterministic uniform scan of [0, 1).
            counts[s.sample(i as f64 / n as f64) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let want = s.share(i as u64);
            assert!((got - want).abs() < 1e-3, "value {i}: {got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_cardinality_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_theta_rejected() {
        let _ = ZipfSampler::new(4, -0.5);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Samples are always in range and the CDF is monotone with a unit
        /// total.
        #[test]
        fn prop_sampler_sanity(n in 1u64..500, theta in 0.0f64..2.0, word in 0u64..u64::MAX) {
            let s = ZipfSampler::new(n, theta);
            prop_assert!(s.sample_u64(word) < n);
            let shares = s.shares();
            prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Monotone non-increasing shares: value i is at least as hot as i+1.
            prop_assert!(shares.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }
}
