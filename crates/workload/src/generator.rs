//! Reproducible query-instance generation and query streams.

use serde::{Deserialize, Serialize};

use mdhf::StarQuery;
use schema::StarSchema;
use simkit_free_rng::SplitMix;

use crate::bound::BoundQuery;
use crate::queries::QueryType;
use crate::skew::ZipfSampler;

/// A tiny splitmix64 generator so the workload crate does not need a direct
/// dependency on the simulation engine's RNG wrapper.  Deterministic for a
/// given seed, which is all query-parameter selection needs.
mod simkit_free_rng {
    /// Splitmix64 state.
    #[derive(Debug, Clone)]
    pub struct SplitMix(pub u64);

    impl SplitMix {
        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Generates bound query instances of a fixed type with random parameters.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    schema: StarSchema,
    query_type: QueryType,
    shape: StarQuery,
    rng: SplitMix,
    generated: u64,
    /// One Zipf sampler per predicate when value skew is enabled; `None`
    /// keeps the paper's uniform parameter selection.
    value_skew: Option<Vec<ZipfSampler>>,
}

impl QueryGenerator {
    /// Creates a generator for `query_type` with the given seed.
    #[must_use]
    pub fn new(schema: &StarSchema, query_type: QueryType, seed: u64) -> Self {
        let shape = query_type.to_star_query(schema);
        QueryGenerator {
            schema: schema.clone(),
            query_type,
            shape,
            rng: SplitMix(seed ^ 0xA5A5_A5A5_5A5A_5A5A),
            generated: 0,
            value_skew: None,
        }
    }

    /// Draws every predicate value from a Zipf(θ) distribution over its
    /// attribute's cardinality instead of uniformly — the attribute-value
    /// skew of hot-spot workloads (value 0 is the hottest).  `theta = 0`
    /// disables the samplers and reproduces the uniform generator's
    /// instance sequence exactly.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite.
    #[must_use]
    pub fn with_value_skew(mut self, theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "skew factor must be finite and non-negative"
        );
        self.value_skew = (theta > 0.0).then(|| {
            self.shape
                .predicates()
                .iter()
                .map(|p| ZipfSampler::new(p.attr.cardinality(&self.schema), theta))
                .collect()
        });
        self
    }

    /// The query type this generator instantiates.
    #[must_use]
    pub fn query_type(&self) -> &QueryType {
        &self.query_type
    }

    /// Number of instances generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Generates the next instance: uniformly random parameter values by
    /// default, Zipf-skewed ones under [`QueryGenerator::with_value_skew`].
    pub fn next_instance(&mut self) -> BoundQuery {
        let values: Vec<u64> = match &self.value_skew {
            Some(samplers) => samplers
                .iter()
                .map(|s| s.sample_u64(self.rng.next_u64()))
                .collect(),
            None => self
                .shape
                .predicates()
                .iter()
                .map(|p| self.rng.below(p.attr.cardinality(&self.schema)))
                .collect(),
        };
        self.generated += 1;
        BoundQuery::new(&self.schema, self.shape.clone(), values)
    }

    /// Generates a batch of `count` instances.
    pub fn batch(&mut self, count: usize) -> Vec<BoundQuery> {
        (0..count).map(|_| self.next_instance()).collect()
    }
}

/// How queries arrive at the system.
///
/// The paper's initial study is single-user ("queries are issued sequentially
/// with a new query starting as soon as the previous one has terminated");
/// multi-user mode is listed as future work and provided here as an
/// extension: a closed workload with a fixed number of concurrent query
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryStream {
    /// One query at a time, back to back.
    SingleUser,
    /// `streams` independent users, each issuing its next query as soon as
    /// its previous one finishes (closed multi-user workload).
    MultiUser {
        /// Number of concurrent query streams.
        streams: usize,
    },
}

impl QueryStream {
    /// The number of queries that are in the system concurrently.
    #[must_use]
    pub fn concurrency(&self) -> usize {
        match self {
            QueryStream::SingleUser => 1,
            QueryStream::MultiUser { streams } => (*streams).max(1),
        }
    }

    /// The admission-control limit (MPL) this stream implies for a
    /// concurrent scheduler: a closed workload of `n` users keeps at most
    /// `n` queries in flight.
    #[must_use]
    pub fn max_in_flight(&self) -> usize {
        self.concurrency()
    }
}

/// A deterministic multi-user query stream mixing several query types.
///
/// Each type gets its own per-seed [`QueryGenerator`] (so adding a type to
/// the mix never perturbs the instances of the others) and queries are
/// interleaved round-robin — the submission order a concurrent scheduler
/// admits them in.
#[derive(Debug, Clone)]
pub struct InterleavedStream {
    generators: Vec<QueryGenerator>,
    next: usize,
}

impl InterleavedStream {
    /// Creates a stream over `types`, derived deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    #[must_use]
    pub fn new(schema: &StarSchema, types: &[QueryType], seed: u64) -> Self {
        assert!(!types.is_empty(), "a stream needs at least one query type");
        InterleavedStream {
            generators: types
                .iter()
                .enumerate()
                .map(|(i, t)| QueryGenerator::new(schema, t.clone(), seed ^ ((i as u64) << 32)))
                .collect(),
            next: 0,
        }
    }

    /// Applies [`QueryGenerator::with_value_skew`] to every generator of
    /// the mix — a deterministic hot-spot stream.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite.
    #[must_use]
    pub fn with_value_skew(mut self, theta: f64) -> Self {
        self.generators = self
            .generators
            .into_iter()
            .map(|g| g.with_value_skew(theta))
            .collect();
        self
    }

    /// The next query of the stream (round-robin over the mixed types).
    pub fn next_query(&mut self) -> BoundQuery {
        let current = self.next;
        self.next = (self.next + 1) % self.generators.len();
        self.generators[current].next_instance()
    }

    /// The next `count` queries of the stream.
    pub fn take_queries(&mut self, count: usize) -> Vec<BoundQuery> {
        (0..count).map(|_| self.next_query()).collect()
    }

    /// Total queries generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generators.iter().map(QueryGenerator::generated).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn generation_is_reproducible() {
        let s = apb1_schema();
        let mut g1 = QueryGenerator::new(&s, QueryType::OneMonthOneGroup, 99);
        let mut g2 = QueryGenerator::new(&s, QueryType::OneMonthOneGroup, 99);
        let a = g1.batch(20);
        let b = g2.batch(20);
        assert_eq!(a, b);
        assert_eq!(g1.generated(), 20);
        let mut g3 = QueryGenerator::new(&s, QueryType::OneMonthOneGroup, 100);
        assert_ne!(g3.batch(20), a);
    }

    #[test]
    fn values_stay_within_cardinalities_and_vary() {
        let s = apb1_schema();
        let mut g = QueryGenerator::new(&s, QueryType::OneStore, 7);
        let instances = g.batch(200);
        let mut distinct = std::collections::BTreeSet::new();
        for inst in &instances {
            let store = inst.values()[0];
            assert!(store < 1_440);
            distinct.insert(store);
        }
        // Uniform selection over 1 440 stores should produce many distinct
        // values in 200 draws.
        assert!(distinct.len() > 100, "{}", distinct.len());
    }

    #[test]
    fn generator_matches_query_type() {
        let s = apb1_schema();
        let mut g = QueryGenerator::new(&s, QueryType::OneCodeOneQuarter, 1);
        assert_eq!(g.query_type().name(), "1CODE1QUARTER");
        let inst = g.next_instance();
        assert_eq!(inst.query().predicates().len(), 2);
        assert!(inst.values()[0] < 14_400);
        assert!(inst.values()[1] < 8);
    }

    #[test]
    fn stream_concurrency() {
        assert_eq!(QueryStream::SingleUser.concurrency(), 1);
        assert_eq!(QueryStream::MultiUser { streams: 8 }.concurrency(), 8);
        assert_eq!(QueryStream::MultiUser { streams: 0 }.concurrency(), 1);
        assert_eq!(QueryStream::SingleUser.max_in_flight(), 1);
        assert_eq!(QueryStream::MultiUser { streams: 6 }.max_in_flight(), 6);
    }

    #[test]
    fn interleaved_stream_cycles_types_deterministically() {
        let s = apb1_schema();
        let types = [
            QueryType::OneMonthOneGroup,
            QueryType::OneStore,
            QueryType::OneCode,
        ];
        let mut a = InterleavedStream::new(&s, &types, 7);
        let mut b = InterleavedStream::new(&s, &types, 7);
        let batch_a = a.take_queries(9);
        assert_eq!(batch_a, b.take_queries(9));
        assert_eq!(a.generated(), 9);
        // Round-robin: query i has the shape of types[i % 3].
        for (i, q) in batch_a.iter().enumerate() {
            assert_eq!(q.query().name(), types[i % 3].name());
        }
        // A different seed yields different instances.
        let mut c = InterleavedStream::new(&s, &types, 8);
        assert_ne!(c.take_queries(9), batch_a);
        // Dropping a type from the mix leaves the remaining generators'
        // instance sequences untouched.
        let mut two = InterleavedStream::new(&s, &types[..2], 7);
        let pairs = two.take_queries(6);
        for (i, q) in pairs.iter().enumerate() {
            assert_eq!(q, &batch_a[(i / 2) * 3 + (i % 2)]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one query type")]
    fn empty_stream_mix_rejected() {
        let _ = InterleavedStream::new(&apb1_schema(), &[], 1);
    }

    #[test]
    fn value_skew_concentrates_queries_on_hot_values() {
        let s = apb1_schema();
        let batch = QueryGenerator::new(&s, QueryType::OneStore, 7)
            .with_value_skew(1.0)
            .batch(400);
        // Under Zipf θ = 1 over 1 440 stores, the hottest store (~12 % of
        // draws) dominates; a uniform generator gives each ~0.07 %.
        let hot = batch.iter().filter(|q| q.values()[0] == 0).count();
        assert!(hot > 20, "hot-value draws: {hot}");
        assert!(batch.iter().all(|q| q.values()[0] < 1_440));
        // Reproducible for a fixed seed.
        let again = QueryGenerator::new(&s, QueryType::OneStore, 7)
            .with_value_skew(1.0)
            .batch(400);
        assert_eq!(batch, again);
    }

    #[test]
    fn zero_skew_matches_the_uniform_generator_exactly() {
        let s = apb1_schema();
        let uniform = QueryGenerator::new(&s, QueryType::OneMonthOneGroup, 42).batch(50);
        let zero_skew = QueryGenerator::new(&s, QueryType::OneMonthOneGroup, 42)
            .with_value_skew(0.0)
            .batch(50);
        assert_eq!(uniform, zero_skew);
    }

    #[test]
    fn skewed_interleaved_stream_is_deterministic() {
        let s = apb1_schema();
        let types = [QueryType::OneMonthOneGroup, QueryType::OneCode];
        let mut a = InterleavedStream::new(&s, &types, 11).with_value_skew(1.0);
        let mut b = InterleavedStream::new(&s, &types, 11).with_value_skew(1.0);
        assert_eq!(a.take_queries(12), b.take_queries(12));
    }
}
