//! Named query types of the paper's evaluation.

use serde::{Deserialize, Serialize};

use mdhf::StarQuery;
use schema::StarSchema;

/// The query types used in the paper's experiments, plus an escape hatch for
/// arbitrary attribute combinations.
///
/// Every variant is an exact-match star query aggregating the fact-table
/// measures under a selection on the listed attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryType {
    /// `1STORE` — one customer store, all other dimensions unrestricted
    /// (the disk-bound query of Figures 3, 5 and 6).
    OneStore,
    /// `1MONTH` — one month (the CPU-bound query of Figure 4).
    OneMonth,
    /// `1CODE` — one product code over all months.
    OneCode,
    /// `1MONTH1GROUP` — one month and one product group (§3.1 sample query).
    OneMonthOneGroup,
    /// `1CODE1QUARTER` — one product code within one quarter (Figure 6).
    OneCodeOneQuarter,
    /// `1GROUP` — one product group over all months.
    OneGroup,
    /// `1QUARTER` — one quarter.
    OneQuarter,
    /// `1GROUP1STORE` — one product group and one store (§4.2 example).
    OneGroupOneStore,
    /// A custom exact-match query over the given `dimension::level` strings.
    Custom {
        /// Display name of the custom query.
        name: String,
        /// Referenced attributes as `dimension::level` strings.
        attrs: Vec<String>,
    },
}

impl QueryType {
    /// The display name used in tables and plots.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            QueryType::OneStore => "1STORE".to_string(),
            QueryType::OneMonth => "1MONTH".to_string(),
            QueryType::OneCode => "1CODE".to_string(),
            QueryType::OneMonthOneGroup => "1MONTH1GROUP".to_string(),
            QueryType::OneCodeOneQuarter => "1CODE1QUARTER".to_string(),
            QueryType::OneGroup => "1GROUP".to_string(),
            QueryType::OneQuarter => "1QUARTER".to_string(),
            QueryType::OneGroupOneStore => "1GROUP1STORE".to_string(),
            QueryType::Custom { name, .. } => name.clone(),
        }
    }

    /// The referenced attributes as `dimension::level` strings.
    #[must_use]
    pub fn attrs(&self) -> Vec<String> {
        let fixed: &[&str] = match self {
            QueryType::OneStore => &["customer::store"],
            QueryType::OneMonth => &["time::month"],
            QueryType::OneCode => &["product::code"],
            QueryType::OneMonthOneGroup => &["time::month", "product::group"],
            QueryType::OneCodeOneQuarter => &["product::code", "time::quarter"],
            QueryType::OneGroup => &["product::group"],
            QueryType::OneQuarter => &["time::quarter"],
            QueryType::OneGroupOneStore => &["product::group", "customer::store"],
            QueryType::Custom { attrs, .. } => {
                return attrs.clone();
            }
        };
        fixed.iter().map(|s| (*s).to_string()).collect()
    }

    /// Resolves the query type into a [`StarQuery`] shape for `schema`.
    ///
    /// # Panics
    ///
    /// Panics if an attribute does not exist in the schema.
    #[must_use]
    pub fn to_star_query(&self, schema: &StarSchema) -> StarQuery {
        let attrs = self.attrs();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        StarQuery::exact_match(schema, &self.name(), &attr_refs)
    }

    /// The standard mix used by the paper's discussion sections: each of the
    /// named query types with equal weight.
    #[must_use]
    pub fn standard_mix() -> Vec<QueryType> {
        vec![
            QueryType::OneStore,
            QueryType::OneMonth,
            QueryType::OneCode,
            QueryType::OneMonthOneGroup,
            QueryType::OneCodeOneQuarter,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn names_and_attrs() {
        assert_eq!(QueryType::OneStore.name(), "1STORE");
        assert_eq!(QueryType::OneStore.attrs(), vec!["customer::store"]);
        assert_eq!(
            QueryType::OneCodeOneQuarter.attrs(),
            vec!["product::code", "time::quarter"]
        );
        let custom = QueryType::Custom {
            name: "1CHANNEL".to_string(),
            attrs: vec!["channel::channel".to_string()],
        };
        assert_eq!(custom.name(), "1CHANNEL");
        assert_eq!(custom.attrs(), vec!["channel::channel"]);
    }

    #[test]
    fn resolve_to_star_queries() {
        let s = apb1_schema();
        for qt in QueryType::standard_mix() {
            let q = qt.to_star_query(&s);
            assert_eq!(q.name(), qt.name());
            assert_eq!(q.predicates().len(), qt.attrs().len());
        }
        // Expected selectivity for the disk-bound query.
        let q = QueryType::OneStore.to_star_query(&s);
        assert!((q.expected_hits(&s) - 1_296_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bad attribute")]
    fn unknown_attribute_panics() {
        let s = apb1_schema();
        let custom = QueryType::Custom {
            name: "BAD".to_string(),
            attrs: vec!["product::week".to_string()],
        };
        let _ = custom.to_star_query(&s);
    }
}
