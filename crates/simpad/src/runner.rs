//! High-level experiment runner.
//!
//! [`run_experiment`] wires the whole stack together: it builds the bitmap
//! catalog, the fragmentation and the physical allocation, generates a number
//! of query instances of one type, plans them, executes them on the engine
//! and returns a [`RunSummary`] — one data point of the paper's figures.

use allocation::PhysicalAllocation;
use bitmap::IndexCatalog;
use mdhf::Fragmentation;
use schema::{PageSizing, StarSchema};
use workload::{QueryGenerator, QueryStream, QueryType};

use crate::config::SimConfig;
use crate::engine::{DiskLayout, Engine};
use crate::metrics::RunSummary;
use crate::plan::plan_query;

/// Everything needed to run one experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The star schema (usually the full APB-1 schema).
    pub schema: StarSchema,
    /// The fact-table fragmentation under test.
    pub fragmentation: Fragmentation,
    /// The physical allocation of fragments to disks.
    pub allocation: PhysicalAllocation,
    /// The simulator configuration.
    pub config: SimConfig,
    /// The query type executed (all queries of a run share one type, §5).
    pub query_type: QueryType,
    /// Number of query instances to execute.
    pub queries: usize,
    /// Workload arrival model.
    pub stream: QueryStream,
}

impl ExperimentSetup {
    /// Convenience constructor: round-robin allocation over the configured
    /// number of disks, single-user stream.
    #[must_use]
    pub fn new(
        schema: StarSchema,
        fragmentation: Fragmentation,
        config: SimConfig,
        query_type: QueryType,
        queries: usize,
    ) -> Self {
        let allocation = PhysicalAllocation::round_robin(config.disks);
        ExperimentSetup {
            schema,
            fragmentation,
            allocation,
            config,
            query_type,
            queries,
            stream: QueryStream::SingleUser,
        }
    }

    /// Switches the workload arrival model — e.g.
    /// [`QueryStream::MultiUser`] for the closed multi-user runs whose
    /// throughput the measured scheduler sweep is compared against.
    #[must_use]
    pub fn with_stream(mut self, stream: QueryStream) -> Self {
        self.stream = stream;
        self
    }
}

/// Runs one experiment point and returns its summary.
#[must_use]
pub fn run_experiment(setup: &ExperimentSetup) -> RunSummary {
    let catalog = IndexCatalog::default_for(&setup.schema);
    let mut generator =
        QueryGenerator::new(&setup.schema, setup.query_type.clone(), setup.config.seed);

    let plans: Vec<_> = (0..setup.queries)
        .map(|_| {
            let bound = generator.next_instance();
            plan_query(
                &setup.schema,
                &catalog,
                &setup.fragmentation,
                &setup.allocation,
                &setup.config,
                &bound,
            )
        })
        .collect();

    let sizing = PageSizing::with_page_size(&setup.schema, setup.config.page_size);
    let n = setup.fragmentation.fragment_count();
    let rows_per_page = sizing.fact_tuples_per_page();
    let fragment_pages = (sizing.fact_rows() as f64 / n as f64 / rows_per_page as f64)
        .ceil()
        .max(1.0) as u64;
    let frag_attrs: Vec<(usize, usize)> = setup
        .fragmentation
        .attrs()
        .iter()
        .map(|a| (a.dimension, a.level))
        .collect();
    let layout = DiskLayout {
        total_fragments: n,
        fragment_pages,
        bitmap_fragment_pages: (sizing.bitmap_fragment_pages(n).ceil() as u64).max(1),
        bitmaps_per_fragment: catalog.total_bitmaps_under_fragmentation(&frag_attrs),
    };

    let engine = Engine::new(setup.config, layout, plans, setup.stream.concurrency());
    let (metrics, disk_utils, cpu_util, simulated_ms) = engine.run();

    RunSummary::from_queries(
        setup.query_type.name(),
        setup.config.disks,
        setup.config.nodes,
        setup.config.subqueries_per_node,
        metrics,
        disk_utils,
        cpu_util,
        simulated_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn setup(
        disks: u64,
        nodes: usize,
        t: usize,
        query_type: QueryType,
        frag: &[&str],
        queries: usize,
    ) -> ExperimentSetup {
        let schema = apb1_schema();
        let fragmentation = Fragmentation::parse(&schema, frag).unwrap();
        let config = SimConfig {
            disks,
            nodes,
            subqueries_per_node: t,
            ..SimConfig::default()
        };
        ExperimentSetup::new(schema, fragmentation, config, query_type, queries)
    }

    #[test]
    fn one_month_one_group_run_produces_sane_summary() {
        let s = setup(
            20,
            4,
            4,
            QueryType::OneMonthOneGroup,
            &["time::month", "product::group"],
            3,
        );
        let summary = run_experiment(&s);
        assert_eq!(summary.queries.len(), 3);
        assert_eq!(summary.query_name, "1MONTH1GROUP");
        assert!(summary.mean_response_ms > 0.0);
        assert!(summary.mean_response_secs() < 20.0);
        assert!(summary.disk_utilisation >= 0.0 && summary.disk_utilisation <= 1.0);
        assert!(summary.simulated_ms >= summary.mean_response_ms);
    }

    #[test]
    fn multi_user_streams_raise_simulated_throughput() {
        // The multi-user cross-check hook: 1MONTH1GROUP is a single-fragment
        // query, so a lone stream leaves most of the 4 nodes idle and a
        // closed 4-user workload must complete the same queries in less
        // simulated time — higher queries/sec.
        let base = setup(
            20,
            4,
            4,
            QueryType::OneMonthOneGroup,
            &["time::month", "product::group"],
            8,
        );
        let single = run_experiment(&base);
        let multi = run_experiment(
            &base
                .clone()
                .with_stream(QueryStream::MultiUser { streams: 4 }),
        );
        assert_eq!(single.queries.len(), multi.queries.len());
        assert!(
            multi.throughput_qps() > single.throughput_qps(),
            "multi-user {} qps vs single-user {} qps",
            multi.throughput_qps(),
            single.throughput_qps()
        );
    }

    #[test]
    fn one_code_one_quarter_is_fast_under_supporting_fragmentation() {
        // Figure 6: 1CODE1QUARTER completes within a few seconds.
        let s = setup(
            100,
            20,
            5,
            QueryType::OneCodeOneQuarter,
            &["time::month", "product::group"],
            3,
        );
        let summary = run_experiment(&s);
        assert!(
            summary.mean_response_secs() < 10.0,
            "{} s",
            summary.mean_response_secs()
        );
    }

    #[test]
    fn more_disks_improve_the_disk_bound_query() {
        // A reduced-size sanity check of the Figure 3 trend: with two disks
        // the 1MONTH query is disk-bound, so quadrupling the disks (nodes
        // unchanged) must clearly shorten the response time.
        let few = run_experiment(&setup(
            2,
            4,
            4,
            QueryType::OneMonth,
            &["time::month", "product::group"],
            1,
        ));
        let many = run_experiment(&setup(
            16,
            4,
            4,
            QueryType::OneMonth,
            &["time::month", "product::group"],
            1,
        ));
        assert!(
            few.mean_response_ms > 1.5 * many.mean_response_ms,
            "few-disk {} ms vs many-disk {} ms",
            few.mean_response_ms,
            many.mean_response_ms
        );
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let s = setup(
            20,
            4,
            4,
            QueryType::OneMonthOneGroup,
            &["time::month", "product::group"],
            2,
        );
        let a = run_experiment(&s);
        let b = run_experiment(&s);
        assert_eq!(a.mean_response_ms, b.mean_response_ms);
        assert_eq!(a.queries.len(), b.queries.len());
    }
}
