//! Simulation parameters (Table 4) and hardware grids (Table 5).

use serde::{Deserialize, Serialize};

use storage::DiskParameters;

/// CPU instruction costs of the major query-processing steps (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionCosts {
    /// Initiate / plan a query (coordinator).
    pub initiate_query: u64,
    /// Terminate a query (coordinator).
    pub terminate_query: u64,
    /// Initiate / plan a subquery (processing node).
    pub initiate_subquery: u64,
    /// Terminate a subquery (processing node).
    pub terminate_subquery: u64,
    /// Read one page from disk into the buffer.
    pub read_page: u64,
    /// Process one bitmap page (scan for hit bits).
    pub process_bitmap_page: u64,
    /// Extract one fact-table row.
    pub extract_row: u64,
    /// Aggregate one fact-table row.
    pub aggregate_row: u64,
    /// Fixed cost of sending a message (plus one instruction per byte).
    pub send_message: u64,
    /// Fixed cost of receiving a message (plus one instruction per byte).
    pub receive_message: u64,
}

impl Default for InstructionCosts {
    fn default() -> Self {
        InstructionCosts {
            initiate_query: 50_000,
            terminate_query: 10_000,
            initiate_subquery: 10_000,
            terminate_subquery: 10_000,
            read_page: 3_000,
            process_bitmap_page: 1_500,
            extract_row: 100,
            aggregate_row: 100,
            send_message: 1_000,
            receive_message: 1_000,
        }
    }
}

/// The full simulation configuration (Table 4 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of disks `d`.
    pub disks: u64,
    /// Number of processing nodes `p`.
    pub nodes: usize,
    /// CPU speed in MIPS.
    pub cpu_mips: f64,
    /// Maximum concurrent subqueries per node `t`.  The coordinator node
    /// counts its coordination work as one task and therefore only runs
    /// `t - 1` subqueries (§5).
    pub subqueries_per_node: usize,
    /// Disk service-time parameters.
    pub disk: DiskParameters,
    /// Instruction costs.
    pub instructions: InstructionCosts,
    /// Page size in bytes.
    pub page_size: u64,
    /// Fact-table buffer size in pages.
    pub fact_buffer_pages: usize,
    /// Bitmap buffer size in pages.
    pub bitmap_buffer_pages: usize,
    /// Prefetch size on fact fragments, in pages.
    pub fact_prefetch_pages: u64,
    /// Prefetch size on bitmap fragments, in pages.
    pub bitmap_prefetch_pages: u64,
    /// Network connection speed in bit/s.
    pub network_bits_per_sec: f64,
    /// Small (control) message size in bytes.
    pub small_message_bytes: u64,
    /// Whether the bitmap fragments of a subquery are read in parallel from
    /// their staggered disks (Figure 5's "parallel I/O") or one after the
    /// other ("non-parallel I/O").
    pub parallel_bitmap_io: bool,
    /// Whether the LRU buffer pools are consulted before issuing disk I/O.
    pub use_buffer: bool,
    /// Master random seed (coordinator selection, query parameters).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            disks: 100,
            nodes: 20,
            cpu_mips: 50.0,
            subqueries_per_node: 5,
            disk: DiskParameters::default(),
            instructions: InstructionCosts::default(),
            page_size: 4 * 1024,
            fact_buffer_pages: 1_000,
            bitmap_buffer_pages: 5_000,
            fact_prefetch_pages: 8,
            bitmap_prefetch_pages: 5,
            network_bits_per_sec: 100e6,
            small_message_bytes: 128,
            parallel_bitmap_io: true,
            use_buffer: true,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// Time (ms) for a CPU burst of `instructions` instructions.
    #[must_use]
    pub fn cpu_ms(&self, instructions: u64) -> f64 {
        instructions as f64 / (self.cpu_mips * 1_000.0)
    }

    /// Network transfer delay (ms) for a message of `bytes` bytes.
    #[must_use]
    pub fn network_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / self.network_bits_per_sec * 1_000.0
    }

    /// CPU cost (instructions) of sending a message of `bytes` bytes
    /// (Table 4: `1,000 + #B`).
    #[must_use]
    pub fn send_instructions(&self, bytes: u64) -> u64 {
        self.instructions.send_message + bytes
    }

    /// CPU cost (instructions) of receiving a message of `bytes` bytes.
    #[must_use]
    pub fn receive_instructions(&self, bytes: u64) -> u64 {
        self.instructions.receive_message + bytes
    }

    /// The hardware grid of the speed-up experiments (Table 5): for each
    /// number of disks `d ∈ {20, 60, 100}` the processor counts
    /// `p = d/20, d/10, d/5, d/4, d/2`.
    #[must_use]
    pub fn speedup_grid() -> Vec<(u64, usize)> {
        let mut grid = Vec::new();
        for d in [20u64, 60, 100] {
            for divisor in [20u64, 10, 5, 4, 2] {
                let p = (d / divisor).max(1) as usize;
                grid.push((d, p));
            }
        }
        grid
    }

    /// Derives a configuration for one point of the speed-up grid, keeping
    /// all other parameters at their defaults and using the paper's
    /// `t = d / p` rule for the number of subqueries per node.
    #[must_use]
    pub fn for_speedup_point(disks: u64, nodes: usize) -> Self {
        SimConfig {
            disks,
            nodes,
            subqueries_per_node: ((disks as usize) / nodes.max(1)).max(1),
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.disks, 100);
        assert_eq!(c.nodes, 20);
        assert_eq!(c.cpu_mips, 50.0);
        assert_eq!(c.page_size, 4_096);
        assert_eq!(c.fact_buffer_pages, 1_000);
        assert_eq!(c.bitmap_buffer_pages, 5_000);
        assert_eq!(c.fact_prefetch_pages, 8);
        assert_eq!(c.bitmap_prefetch_pages, 5);
        assert_eq!(c.instructions.initiate_query, 50_000);
        assert_eq!(c.instructions.read_page, 3_000);
        assert_eq!(c.instructions.process_bitmap_page, 1_500);
        assert_eq!(c.disk.avg_seek_ms, 10.0);
        assert_eq!(c.disk.settle_controller_ms, 3.0);
        assert_eq!(c.disk.per_page_ms, 1.0);
    }

    #[test]
    fn derived_times() {
        let c = SimConfig::default();
        // 50,000 instructions at 50 MIPS = 1 ms.
        assert!((c.cpu_ms(50_000) - 1.0).abs() < 1e-12);
        // A 4 KB page over 100 Mbit/s ≈ 0.33 ms.
        assert!((c.network_ms(4_096) - 0.327_68).abs() < 1e-3);
        // Small message: ~0.01 ms.
        assert!(c.network_ms(128) < 0.02);
        assert_eq!(c.send_instructions(128), 1_128);
        assert_eq!(c.receive_instructions(4_096), 5_096);
    }

    #[test]
    fn speedup_grid_matches_table_5() {
        let grid = SimConfig::speedup_grid();
        assert_eq!(grid.len(), 15);
        assert!(grid.contains(&(20, 1)));
        assert!(grid.contains(&(20, 10)));
        assert!(grid.contains(&(60, 3)));
        assert!(grid.contains(&(60, 30)));
        assert!(grid.contains(&(100, 5)));
        assert!(grid.contains(&(100, 50)));
        // Processor counts range from 1 to 50 as in the paper.
        assert_eq!(grid.iter().map(|&(_, p)| p).min(), Some(1));
        assert_eq!(grid.iter().map(|&(_, p)| p).max(), Some(50));
    }

    #[test]
    fn speedup_point_uses_t_equals_d_over_p() {
        let c = SimConfig::for_speedup_point(100, 20);
        assert_eq!(c.subqueries_per_node, 5);
        let c = SimConfig::for_speedup_point(20, 1);
        assert_eq!(c.subqueries_per_node, 20);
        let c = SimConfig::for_speedup_point(60, 30);
        assert_eq!(c.subqueries_per_node, 2);
    }
}
