//! `simpad` — a Rust re-implementation of the paper's SIMPAD simulator.
//!
//! SIMPAD ("Simulation of Parallel Databases") is the C++/CSIM simulation
//! system the paper uses to evaluate MDHF data allocations on a Shared Disk
//! parallel database system (§5).  This crate re-implements the described
//! model on top of the [`simkit`] discrete-event engine:
//!
//! * **Hardware** — `d` disks with a track-based seek model and `p`
//!   processing nodes with 50-MIPS CPUs, an idealised contention-free network
//!   with size-proportional delays (Table 4),
//! * **Database** — the star schema, its MDHF fragmentation, the bitmap-index
//!   catalog and the physical disk allocation from the companion crates,
//! * **Query processing** — a coordinator node per query that builds a task
//!   list of per-fragment subqueries, assigns them round-robin to nodes with
//!   at most `t` concurrent tasks per node, and collects partial aggregates;
//!   each subquery reads its bitmap fragments (optionally in parallel on the
//!   staggered disks), then alternates prefetch-granule fact I/O with CPU
//!   processing (§4.3, §5),
//! * **Buffering** — LRU buffer pools for fact and bitmap pages with
//!   prefetching,
//! * **Workload** — single-user streams as in the paper, plus a closed
//!   multi-user extension.
//!
//! The top-level entry point is [`runner::run_experiment`], which executes a
//! number of query instances of one type and reports response-time and
//! utilisation statistics — the quantities plotted in Figures 3–6.
//!
//! # Quick start
//!
//! ```
//! use simpad::{run_experiment, ExperimentSetup, SimConfig};
//! use workload::QueryType;
//!
//! let schema = schema::apb1::apb1_scaled_down();
//! let fragmentation =
//!     mdhf::Fragmentation::parse(&schema, &["time::month"]).unwrap();
//! let config = SimConfig { disks: 8, nodes: 2, ..SimConfig::default() };
//! let setup =
//!     ExperimentSetup::new(schema, fragmentation, config, QueryType::OneMonth, 2);
//!
//! let summary = run_experiment(&setup);
//! assert_eq!(summary.queries.len(), 2);
//! assert!(summary.mean_response_ms > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod plan;
pub mod runner;

pub use config::{InstructionCosts, SimConfig};
pub use engine::Engine;
pub use metrics::{QueryMetrics, RunSummary};
pub use plan::{plan_query, BitmapRead, QueryPlan, SubqueryWork};
pub use runner::{run_experiment, ExperimentSetup};
