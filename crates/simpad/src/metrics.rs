//! Simulation metrics: per-query response times and resource utilisation.

use serde::{Deserialize, Serialize};

use simkit::Tally;

/// Metrics of one executed query instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Response time in milliseconds.
    pub response_ms: f64,
    /// Number of subqueries executed.
    pub subqueries: usize,
    /// Fact + bitmap disk I/O operations issued.
    pub disk_io_ops: u64,
    /// Fact + bitmap pages transferred from disk.
    pub pages_read: u64,
    /// Pages satisfied from the buffer pools without disk I/O.
    pub buffer_hits: u64,
}

/// Aggregated results of one experiment run (a sequence of query instances of
/// one type under one configuration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Query type name.
    pub query_name: String,
    /// Number of disks in the configuration.
    pub disks: u64,
    /// Number of processing nodes.
    pub nodes: usize,
    /// Subqueries per node (`t`).
    pub subqueries_per_node: usize,
    /// Per-query metrics in execution order.
    pub queries: Vec<QueryMetrics>,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
    /// Standard deviation of the response time in milliseconds.
    pub std_response_ms: f64,
    /// Mean disk utilisation over the run (0–1, averaged over disks).
    pub disk_utilisation: f64,
    /// Per-disk utilisation over the run (0–1, indexed by disk) — the
    /// simulated per-disk load profile skew experiments compare against.
    pub disk_utilisations: Vec<f64>,
    /// Mean CPU utilisation over the run (0–1, averaged over nodes).
    pub cpu_utilisation: f64,
    /// Total simulated time of the run in milliseconds.
    pub simulated_ms: f64,
}

impl RunSummary {
    /// Builds a summary from per-query metrics and utilisation figures.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_queries(
        query_name: String,
        disks: u64,
        nodes: usize,
        subqueries_per_node: usize,
        queries: Vec<QueryMetrics>,
        disk_utilisations: Vec<f64>,
        cpu_utilisation: f64,
        simulated_ms: f64,
    ) -> Self {
        let mut tally = Tally::new();
        for q in &queries {
            tally.record(q.response_ms);
        }
        let disk_utilisation = if disk_utilisations.is_empty() {
            0.0
        } else {
            disk_utilisations.iter().sum::<f64>() / disk_utilisations.len() as f64
        };
        RunSummary {
            query_name,
            disks,
            nodes,
            subqueries_per_node,
            queries,
            mean_response_ms: tally.mean(),
            std_response_ms: tally.std_dev(),
            disk_utilisation,
            disk_utilisations,
            cpu_utilisation,
            simulated_ms,
        }
    }

    /// Mean response time in seconds (the unit of the paper's figures).
    #[must_use]
    pub fn mean_response_secs(&self) -> f64 {
        self.mean_response_ms / 1_000.0
    }

    /// Simulated multi-user throughput: completed queries per second of
    /// simulated time.  In single-user runs this is just the reciprocal of
    /// the mean response time; in closed multi-user runs it is the quantity
    /// the paper's SIMPAD experiments rank allocations by, and what the
    /// measured `exec::scheduler` sweep is cross-checked against.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        if self.simulated_ms <= 0.0 {
            return 0.0;
        }
        self.queries.len() as f64 / (self.simulated_ms / 1_000.0)
    }

    /// Simulated per-disk load imbalance: the busiest disk's utilisation
    /// over the mean disk utilisation (1.0 = perfectly declustered, as the
    /// paper's round-robin allocation achieves for uniform workloads; an
    /// all-idle run reports 1.0), via the shared
    /// [`allocation::load_imbalance`] formula.
    #[must_use]
    pub fn disk_imbalance(&self) -> f64 {
        allocation::load_imbalance(&self.disk_utilisations)
    }

    /// Speed-up of this run relative to a baseline run (baseline mean
    /// response time divided by this run's).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &RunSummary) -> f64 {
        if self.mean_response_ms == 0.0 {
            return 0.0;
        }
        baseline.mean_response_ms / self.mean_response_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(ms: f64) -> QueryMetrics {
        QueryMetrics {
            response_ms: ms,
            subqueries: 10,
            disk_io_ops: 100,
            pages_read: 800,
            buffer_hits: 0,
        }
    }

    #[test]
    fn summary_statistics() {
        let summary = RunSummary::from_queries(
            "1MONTH".to_string(),
            100,
            20,
            4,
            vec![metric(1_000.0), metric(2_000.0), metric(3_000.0)],
            vec![0.6, 0.4],
            0.3,
            6_000.0,
        );
        assert_eq!(summary.mean_response_ms, 2_000.0);
        assert!((summary.std_response_ms - 1_000.0).abs() < 1e-9);
        assert_eq!(summary.mean_response_secs(), 2.0);
        assert_eq!(summary.queries.len(), 3);
        assert_eq!(summary.query_name, "1MONTH");
        // The mean utilisation derives from the per-disk profile, whose
        // imbalance is busiest over mean.
        assert!((summary.disk_utilisation - 0.5).abs() < 1e-12);
        assert!((summary.disk_imbalance() - 1.2).abs() < 1e-12);
        // 3 queries over 6 simulated seconds → 0.5 queries/sec.
        assert!((summary.throughput_qps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_computation() {
        let slow = RunSummary::from_queries(
            "q".into(),
            20,
            1,
            4,
            vec![metric(10_000.0)],
            vec![0.9],
            0.1,
            10_000.0,
        );
        let fast = RunSummary::from_queries(
            "q".into(),
            100,
            5,
            4,
            vec![metric(2_000.0)],
            vec![0.9],
            0.1,
            2_000.0,
        );
        assert!((fast.speedup_vs(&slow) - 5.0).abs() < 1e-12);
        assert!((slow.speedup_vs(&slow) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let summary = RunSummary::from_queries("q".into(), 10, 2, 4, vec![], vec![], 0.0, 0.0);
        assert_eq!(summary.mean_response_ms, 0.0);
        assert_eq!(summary.std_response_ms, 0.0);
        assert_eq!(summary.disk_utilisation, 0.0);
        assert_eq!(summary.disk_imbalance(), 1.0);
    }
}
