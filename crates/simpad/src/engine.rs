//! The event-driven Shared Disk execution engine.
//!
//! The engine executes one or more [`QueryPlan`]s on a simulated Shared Disk
//! PDBS: `p` processing nodes (one 50-MIPS CPU each, modelled as a FCFS
//! server), `d` disks (FCFS servers with a track-based service-time model),
//! an idealised network and LRU buffer pools.  Query processing follows §4.3
//! and §5 of the paper:
//!
//! 1. a randomly selected **coordinator** node plans the query and builds the
//!    task list of subqueries (one per relevant fact fragment, in allocation
//!    order),
//! 2. subqueries are assigned round-robin to nodes, at most `t` per node
//!    (the coordinator counts its coordination work as one task and accepts
//!    only `t − 1`),
//! 3. each subquery reads the bitmap fragments it needs (in parallel from the
//!    staggered disks, or serially), processes them, then alternates
//!    prefetch-granule fact I/O with row extraction and aggregation,
//! 4. partial aggregates travel back to the coordinator, which terminates the
//!    query once every subquery has reported.

use simkit::{EventQueue, FcfsServer, RngStream, SimTime};
use storage::{BufferManager, DiskModel};

use crate::config::SimConfig;
use crate::metrics::QueryMetrics;
use crate::plan::QueryPlan;

/// Physical layout information needed to map fragments and bitmap fragments
/// onto disk tracks.
#[derive(Debug, Clone, Copy)]
pub struct DiskLayout {
    /// Total number of fact fragments of the fragmentation.
    pub total_fragments: u64,
    /// Pages per fact fragment.
    pub fragment_pages: u64,
    /// Pages per bitmap fragment.
    pub bitmap_fragment_pages: u64,
    /// Bitmaps stored per fragment (for the bitmap region size).
    pub bitmaps_per_fragment: u64,
}

impl DiskLayout {
    fn rounds(&self, disks: u64) -> u64 {
        self.total_fragments.div_ceil(disks).max(1)
    }

    fn fact_region_pages(&self, disks: u64) -> u64 {
        self.rounds(disks) * self.fragment_pages
    }

    fn total_pages_per_disk(&self, disks: u64) -> u64 {
        self.fact_region_pages(disks)
            + self.rounds(disks) * self.bitmaps_per_fragment * self.bitmap_fragment_pages
    }

    /// Page offset of granule `granule` of fact fragment `fragment` on its disk.
    fn fact_page_offset(&self, disks: u64, fragment: u64, granule: u64, prefetch: u64) -> u64 {
        (fragment / disks) * self.fragment_pages + granule * prefetch
    }

    /// Page offset of bitmap fragment `bitmap_index` of `fragment` on its disk.
    fn bitmap_page_offset(&self, disks: u64, fragment: u64, bitmap_index: u64) -> u64 {
        self.fact_region_pages(disks)
            + ((fragment / disks) * self.bitmaps_per_fragment + bitmap_index)
                * self.bitmap_fragment_pages
    }
}

/// Events exchanged inside the engine.
#[derive(Debug, Clone, Copy)]
enum Event {
    QueryArrive { query: usize },
    QueryPlanned { query: usize },
    SubqueryMessage { sq: usize },
    SubqueryReady { sq: usize },
    BitmapIoDone { sq: usize },
    BitmapCpuDone { sq: usize },
    FactIoDone { sq: usize },
    FactCpuDone { sq: usize },
    SubqueryTerminated { sq: usize },
    ResultReceived { sq: usize },
    QueryDone { query: usize },
}

#[derive(Debug)]
struct DiskState {
    server: FcfsServer,
    model: DiskModel,
    io_ops: u64,
    pages: u64,
}

#[derive(Debug)]
struct NodeState {
    cpu: FcfsServer,
    running: usize,
}

#[derive(Debug)]
struct QueryState {
    coordinator: usize,
    next_task: usize,
    results_outstanding: usize,
    started_at: SimTime,
    io_ops: u64,
    pages: u64,
    buffer_hits: u64,
    next_node_hint: usize,
    done: bool,
}

#[derive(Debug)]
struct SubqueryState {
    query: usize,
    index: usize,
    node: usize,
    bitmap_outstanding: usize,
    serial_bitmap_next: usize,
    fact_granules_done: u64,
}

/// The simulation engine for one experiment run.
pub struct Engine {
    config: SimConfig,
    layout: DiskLayout,
    disks: Vec<DiskState>,
    nodes: Vec<NodeState>,
    buffer: BufferManager,
    events: EventQueue<Event>,
    plans: Vec<QueryPlan>,
    queries: Vec<QueryState>,
    subqueries: Vec<SubqueryState>,
    rng: RngStream,
    metrics: Vec<QueryMetrics>,
    /// Chained single-user execution: index of the next plan to start after
    /// the current one finishes.
    next_query_to_start: usize,
    concurrency: usize,
    /// Subqueries currently assigned to a node and not yet terminated, across
    /// all active queries.  Used to guarantee scheduling progress when the
    /// coordination tasks alone exhaust the per-node task limit.
    inflight_subqueries: usize,
}

impl Engine {
    /// Creates an engine executing `plans` (in order) under `config`.
    ///
    /// `concurrency` is the number of query streams: 1 reproduces the paper's
    /// single-user mode; larger values run a closed multi-user workload.
    #[must_use]
    pub fn new(
        config: SimConfig,
        layout: DiskLayout,
        plans: Vec<QueryPlan>,
        concurrency: usize,
    ) -> Self {
        assert!(config.nodes > 0, "need at least one processing node");
        assert!(config.disks > 0, "need at least one disk");
        let disks = (0..config.disks)
            .map(|i| DiskState {
                server: FcfsServer::new(format!("disk{i}")),
                model: DiskModel::new(config.disk),
                io_ops: 0,
                pages: 0,
            })
            .collect();
        let nodes = (0..config.nodes)
            .map(|i| NodeState {
                cpu: FcfsServer::new(format!("node{i}")),
                running: 0,
            })
            .collect();
        Engine {
            buffer: BufferManager::new(config.fact_buffer_pages, config.bitmap_buffer_pages),
            rng: RngStream::new(config.seed, 1),
            disks,
            nodes,
            events: EventQueue::new(),
            queries: Vec::with_capacity(plans.len()),
            subqueries: Vec::new(),
            metrics: Vec::with_capacity(plans.len()),
            next_query_to_start: 0,
            concurrency: concurrency.max(1),
            inflight_subqueries: 0,
            config,
            layout,
            plans,
        }
    }

    /// Runs all queries to completion and returns per-query metrics together
    /// with the per-disk utilisations, the mean CPU utilisation and the
    /// total simulated time `(metrics, disk_utils, cpu_util, simulated_ms)`.
    pub fn run(mut self) -> (Vec<QueryMetrics>, Vec<f64>, f64, f64) {
        // Start the first `concurrency` queries at time zero.
        let initial = self.concurrency.min(self.plans.len());
        for q in 0..initial {
            let state = self.new_query_state();
            self.queries.push(state);
            self.events
                .schedule(SimTime::ZERO, Event::QueryArrive { query: q });
        }
        self.next_query_to_start = initial;
        // Remaining queries get their state created lazily when they start.
        while let Some((time, event)) = self.events.pop() {
            self.handle(time, event);
        }
        let horizon = self.events.now();
        let disk_utils: Vec<f64> = self
            .disks
            .iter()
            .map(|d| d.server.utilisation(horizon))
            .collect();
        let cpu_util = if self.nodes.is_empty() {
            0.0
        } else {
            self.nodes
                .iter()
                .map(|n| n.cpu.utilisation(horizon))
                .sum::<f64>()
                / self.nodes.len() as f64
        };
        (self.metrics, disk_utils, cpu_util, horizon.as_millis())
    }

    fn new_query_state(&mut self) -> QueryState {
        QueryState {
            coordinator: self.rng.uniform_index(self.config.nodes as u64) as usize,
            next_task: 0,
            results_outstanding: 0,
            started_at: SimTime::ZERO,
            io_ops: 0,
            pages: 0,
            buffer_hits: 0,
            next_node_hint: 0,
            done: false,
        }
    }

    fn cpu_burst(&mut self, node: usize, at: SimTime, instructions: u64) -> SimTime {
        let service = SimTime::from_millis(self.config.cpu_ms(instructions));
        let (_, done) = self.nodes[node].cpu.submit(at, service);
        done
    }

    /// Issues a disk request of `pages` pages at page offset `offset` on
    /// `disk`, returning the completion time.
    fn disk_request(&mut self, disk: u64, at: SimTime, offset: u64, pages: u64) -> SimTime {
        let d = &mut self.disks[disk as usize];
        let total = self.layout.total_pages_per_disk(self.config.disks).max(1);
        let track = d.model.track_of_page(offset, total);
        let service = SimTime::from_millis(d.model.service(track, pages.max(1)));
        let (_, done) = d.server.submit(at, service);
        d.io_ops += 1;
        d.pages += pages;
        done
    }

    /// Assigns pending subqueries of every active query as long as node
    /// capacity allows.
    ///
    /// Each node runs at most `t` concurrent tasks; a query's coordination
    /// work counts as one task on its coordinator node, which therefore
    /// accepts only `t − 1` subqueries (§5).  If coordination tasks alone
    /// exhaust every node's limit (e.g. `t = 1` on a single node), one
    /// subquery is force-assigned to the least loaded node so the simulation
    /// always makes progress.
    fn dispatch_all(&mut self, now: SimTime) {
        for query in 0..self.queries.len() {
            self.dispatch_tasks(now, query);
        }
    }

    fn dispatch_tasks(&mut self, now: SimTime, query: usize) {
        if self.queries[query].done {
            return;
        }
        let plan_len = self.plans[query].subqueries.len();
        loop {
            if self.queries[query].next_task >= plan_len {
                return;
            }
            // Find a node with free capacity, scanning round-robin from the
            // last assignment position.
            let limit = self.config.subqueries_per_node;
            let start = self.queries[query].next_node_hint;
            let mut chosen = None;
            for i in 0..self.config.nodes {
                let node = (start + i) % self.config.nodes;
                if self.nodes[node].running < limit {
                    chosen = Some(node);
                    break;
                }
            }
            if chosen.is_none() && self.inflight_subqueries == 0 {
                // Only coordination tasks occupy the nodes: force progress.
                chosen = (0..self.config.nodes).min_by_key(|&n| self.nodes[n].running);
            }
            let Some(node) = chosen else { return };
            self.queries[query].next_node_hint = (node + 1) % self.config.nodes;

            let task_index = self.queries[query].next_task;
            self.queries[query].next_task += 1;
            self.nodes[node].running += 1;
            self.inflight_subqueries += 1;

            let sq_id = self.subqueries.len();
            self.subqueries.push(SubqueryState {
                query,
                index: task_index,
                node,
                bitmap_outstanding: 0,
                serial_bitmap_next: 0,
                fact_granules_done: 0,
            });

            // Coordinator sends the assignment message.
            let coordinator = self.queries[query].coordinator;
            let send = self
                .config
                .send_instructions(self.config.small_message_bytes);
            let sent_at = self.cpu_burst(coordinator, now, send);
            let arrive = sent_at
                + SimTime::from_millis(self.config.network_ms(self.config.small_message_bytes));
            self.events
                .schedule(arrive, Event::SubqueryMessage { sq: sq_id });
        }
    }

    fn work(&self, sq: usize) -> &crate::plan::SubqueryWork {
        let state = &self.subqueries[sq];
        &self.plans[state.query].subqueries[state.index]
    }

    /// Starts the bitmap phase of a subquery (or skips straight to the fact
    /// phase if no bitmaps are needed).
    fn start_bitmap_phase(&mut self, now: SimTime, sq: usize) {
        let bitmap_reads = self.work(sq).bitmap_reads.clone();
        if bitmap_reads.is_empty() {
            self.start_fact_granule(now, sq);
            return;
        }
        let fragment = self.work(sq).fragment;
        if self.config.parallel_bitmap_io {
            let mut outstanding = 0;
            for read in &bitmap_reads {
                let done =
                    self.bitmap_io(now, sq, fragment, read.disk, read.bitmap_index, read.pages);
                match done {
                    Some(t) => {
                        outstanding += 1;
                        self.events.schedule(t, Event::BitmapIoDone { sq });
                    }
                    None => {
                        // Fully buffered: no disk I/O needed for this bitmap.
                    }
                }
            }
            if outstanding == 0 {
                self.events.schedule(now, Event::BitmapIoDone { sq });
                outstanding = 1;
            }
            self.subqueries[sq].bitmap_outstanding = outstanding;
        } else {
            self.subqueries[sq].serial_bitmap_next = 0;
            self.issue_next_serial_bitmap(now, sq);
        }
    }

    /// Issues the next bitmap read of a serial (non-parallel) bitmap phase.
    fn issue_next_serial_bitmap(&mut self, now: SimTime, sq: usize) {
        loop {
            let next = self.subqueries[sq].serial_bitmap_next;
            let reads = &self.plans[self.subqueries[sq].query].subqueries
                [self.subqueries[sq].index]
                .bitmap_reads;
            if next >= reads.len() {
                // All bitmap fragments read: process them on the CPU.
                self.finish_bitmap_io(now, sq);
                return;
            }
            let read = reads[next];
            self.subqueries[sq].serial_bitmap_next += 1;
            let fragment = self.work(sq).fragment;
            if let Some(done) =
                self.bitmap_io(now, sq, fragment, read.disk, read.bitmap_index, read.pages)
            {
                self.events.schedule(done, Event::BitmapIoDone { sq });
                return;
            }
            // Buffered: immediately try the next one.
        }
    }

    /// Performs buffer lookup + disk I/O for one bitmap fragment; returns the
    /// completion time, or `None` if every page was a buffer hit.
    fn bitmap_io(
        &mut self,
        now: SimTime,
        sq: usize,
        fragment: u64,
        disk: u64,
        bitmap_index: u64,
        pages: u64,
    ) -> Option<SimTime> {
        let query = self.subqueries[sq].query;
        let misses = if self.config.use_buffer {
            let object = bitmap_object_id(fragment, bitmap_index);
            let misses = self.buffer.bitmap().request_range(object, 0, pages);
            self.queries[query].buffer_hits += pages - misses;
            misses
        } else {
            pages
        };
        if misses == 0 {
            return None;
        }
        self.queries[query].io_ops += 1;
        self.queries[query].pages += pages;
        let offset = self
            .layout
            .bitmap_page_offset(self.config.disks, fragment, bitmap_index);
        Some(self.disk_request(disk, now, offset, pages))
    }

    /// Called when the last outstanding bitmap I/O of a subquery finished.
    fn finish_bitmap_io(&mut self, now: SimTime, sq: usize) {
        let work = self.work(sq);
        let pages = work.bitmap_pages;
        let node = self.subqueries[sq].node;
        let instr = pages
            * (self.config.instructions.read_page + self.config.instructions.process_bitmap_page);
        let done = self.cpu_burst(node, now, instr);
        self.events.schedule(done, Event::BitmapCpuDone { sq });
    }

    /// Issues the I/O for the next fact granule of a subquery.
    fn start_fact_granule(&mut self, now: SimTime, sq: usize) {
        let work = self.work(sq).clone();
        let granule = self.subqueries[sq].fact_granules_done;
        if granule >= work.fact_granules {
            self.terminate_subquery(now, sq);
            return;
        }
        let query = self.subqueries[sq].query;
        let pages = work.fact_pages_per_granule;
        let misses = if self.config.use_buffer {
            let misses = self
                .buffer
                .fact()
                .request_range(work.fragment, granule * pages, pages);
            self.queries[query].buffer_hits += pages - misses;
            misses
        } else {
            pages
        };
        if misses == 0 {
            self.events.schedule(now, Event::FactIoDone { sq });
            return;
        }
        self.queries[query].io_ops += 1;
        self.queries[query].pages += pages;
        let offset = self
            .layout
            .fact_page_offset(self.config.disks, work.fragment, granule, pages);
        let done = self.disk_request(work.fact_disk, now, offset, pages);
        self.events.schedule(done, Event::FactIoDone { sq });
    }

    /// CPU processing of the granule that just arrived from disk.
    fn process_fact_granule(&mut self, now: SimTime, sq: usize) {
        let work = self.work(sq).clone();
        let node = self.subqueries[sq].node;
        let rows_per_granule =
            (work.relevant_rows as f64 / work.fact_granules.max(1) as f64).ceil() as u64;
        let instr = work.fact_pages_per_granule * self.config.instructions.read_page
            + rows_per_granule
                * (self.config.instructions.extract_row + self.config.instructions.aggregate_row);
        let done = self.cpu_burst(node, now, instr);
        self.events.schedule(done, Event::FactCpuDone { sq });
    }

    fn terminate_subquery(&mut self, now: SimTime, sq: usize) {
        let node = self.subqueries[sq].node;
        let instr = self.config.instructions.terminate_subquery
            + self
                .config
                .send_instructions(self.config.small_message_bytes);
        let done = self.cpu_burst(node, now, instr);
        self.events.schedule(done, Event::SubqueryTerminated { sq });
    }

    fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::QueryArrive { query } => {
                self.queries[query].started_at = now;
                self.queries[query].results_outstanding = self.plans[query].subqueries.len();
                let coordinator = self.queries[query].coordinator;
                self.nodes[coordinator].running += 1;
                let done =
                    self.cpu_burst(coordinator, now, self.config.instructions.initiate_query);
                self.events.schedule(done, Event::QueryPlanned { query });
            }
            Event::QueryPlanned { query } => {
                if self.plans[query].subqueries.is_empty() {
                    // Degenerate query touching nothing: finish immediately.
                    let coordinator = self.queries[query].coordinator;
                    let done =
                        self.cpu_burst(coordinator, now, self.config.instructions.terminate_query);
                    self.events.schedule(done, Event::QueryDone { query });
                } else {
                    self.dispatch_tasks(now, query);
                }
            }
            Event::SubqueryMessage { sq } => {
                let node = self.subqueries[sq].node;
                let instr = self
                    .config
                    .receive_instructions(self.config.small_message_bytes)
                    + self.config.instructions.initiate_subquery;
                let done = self.cpu_burst(node, now, instr);
                self.events.schedule(done, Event::SubqueryReady { sq });
            }
            Event::SubqueryReady { sq } => {
                self.start_bitmap_phase(now, sq);
            }
            Event::BitmapIoDone { sq } => {
                if self.config.parallel_bitmap_io {
                    self.subqueries[sq].bitmap_outstanding -= 1;
                    if self.subqueries[sq].bitmap_outstanding == 0 {
                        self.finish_bitmap_io(now, sq);
                    }
                } else {
                    self.issue_next_serial_bitmap(now, sq);
                }
            }
            Event::BitmapCpuDone { sq } => {
                self.start_fact_granule(now, sq);
            }
            Event::FactIoDone { sq } => {
                self.process_fact_granule(now, sq);
            }
            Event::FactCpuDone { sq } => {
                self.subqueries[sq].fact_granules_done += 1;
                self.start_fact_granule(now, sq);
            }
            Event::SubqueryTerminated { sq } => {
                let node = self.subqueries[sq].node;
                let query = self.subqueries[sq].query;
                self.nodes[node].running -= 1;
                self.inflight_subqueries -= 1;
                // Free slot: assign further tasks of any active query.
                self.dispatch_all(now);
                // The partial aggregate travels to the coordinator.
                let coordinator = self.queries[query].coordinator;
                let arrive = now
                    + SimTime::from_millis(self.config.network_ms(self.config.small_message_bytes));
                let instr = self
                    .config
                    .receive_instructions(self.config.small_message_bytes);
                let service = SimTime::from_millis(self.config.cpu_ms(instr));
                let (_, done) = self.nodes[coordinator].cpu.submit(arrive, service);
                self.events.schedule(done, Event::ResultReceived { sq });
            }
            Event::ResultReceived { sq } => {
                let query = self.subqueries[sq].query;
                self.queries[query].results_outstanding -= 1;
                if self.queries[query].results_outstanding == 0
                    && self.queries[query].next_task == self.plans[query].subqueries.len()
                {
                    let coordinator = self.queries[query].coordinator;
                    let done =
                        self.cpu_burst(coordinator, now, self.config.instructions.terminate_query);
                    self.events.schedule(done, Event::QueryDone { query });
                }
            }
            Event::QueryDone { query } => {
                if self.queries[query].done {
                    return;
                }
                self.queries[query].done = true;
                let coordinator = self.queries[query].coordinator;
                self.nodes[coordinator].running -= 1;
                let state = &self.queries[query];
                self.metrics.push(QueryMetrics {
                    response_ms: (now - state.started_at).as_millis(),
                    subqueries: self.plans[query].subqueries.len(),
                    disk_io_ops: state.io_ops,
                    pages_read: state.pages,
                    buffer_hits: state.buffer_hits,
                });
                // Closed stream: launch the next pending query, if any.
                if self.next_query_to_start < self.plans.len() {
                    let next = self.next_query_to_start;
                    self.next_query_to_start += 1;
                    let st = self.new_query_state();
                    self.queries.push(st);
                    self.events
                        .schedule(now, Event::QueryArrive { query: next });
                }
            }
        }
    }
}

/// Buffer object identifier for a bitmap fragment (kept disjoint from fact
/// fragment numbers, which identify fact objects).
fn bitmap_object_id(fragment: u64, bitmap_index: u64) -> u64 {
    (1u64 << 40) + fragment * 128 + bitmap_index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_query;
    use allocation::PhysicalAllocation;
    use bitmap::IndexCatalog;
    use mdhf::Fragmentation;
    use schema::apb1::apb1_schema;
    use schema::PageSizing;
    use workload::{BoundQuery, QueryType};

    fn small_config() -> SimConfig {
        SimConfig {
            disks: 10,
            nodes: 4,
            subqueries_per_node: 3,
            ..SimConfig::default()
        }
    }

    fn build_plan(
        config: &SimConfig,
        fragmentation_spec: &[&str],
        qt: QueryType,
        values: Vec<u64>,
    ) -> (QueryPlan, DiskLayout) {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let f = Fragmentation::parse(&s, fragmentation_spec).unwrap();
        let a = PhysicalAllocation::round_robin(config.disks);
        let bound = BoundQuery::new(&s, qt.to_star_query(&s), values);
        let plan = plan_query(&s, &catalog, &f, &a, config, &bound);
        let sizing = PageSizing::with_page_size(&s, config.page_size);
        let layout = DiskLayout {
            total_fragments: f.fragment_count(),
            fragment_pages: plan.subqueries.first().map_or(1, |w| w.fragment_pages),
            bitmap_fragment_pages: (sizing.bitmap_fragment_pages(f.fragment_count()).ceil() as u64)
                .max(1),
            bitmaps_per_fragment: 32,
        };
        (plan, layout)
    }

    #[test]
    fn single_fragment_query_completes_quickly() {
        // 1MONTH1GROUP reads one 795-page fragment sequentially: ~100 I/Os of
        // 11 ms plus CPU; the response time must land in the right ballpark
        // (roughly one to three seconds) and all accounting must add up.
        let config = small_config();
        let (plan, layout) = build_plan(
            &config,
            &["time::month", "product::group"],
            QueryType::OneMonthOneGroup,
            vec![3, 17],
        );
        let disks = config.disks;
        let engine = Engine::new(config, layout, vec![plan], 1);
        let (metrics, disk_utils, cpu_util, simulated) = engine.run();
        assert_eq!(metrics.len(), 1);
        let m = &metrics[0];
        assert_eq!(m.subqueries, 1);
        assert!(
            m.response_ms > 100.0 && m.response_ms < 10_000.0,
            "{}",
            m.response_ms
        );
        assert!(m.disk_io_ops >= 100);
        assert!(m.pages_read >= 795);
        assert!(simulated >= m.response_ms);
        assert_eq!(disk_utils.len() as u64, disks);
        assert!(disk_utils.iter().all(|u| (0.0..=1.0).contains(u)));
        assert!((0.0..=1.0).contains(&cpu_util));
    }

    #[test]
    fn one_code_query_uses_multiple_disks() {
        let config = small_config();
        let (plan, layout) = build_plan(
            &config,
            &["time::month", "product::group"],
            QueryType::OneCode,
            vec![65],
        );
        assert_eq!(plan.subqueries.len(), 24);
        let engine = Engine::new(config, layout, vec![plan], 1);
        let (metrics, _, _, _) = engine.run();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].subqueries, 24);
        assert!(metrics[0].disk_io_ops > 24);
    }

    #[test]
    fn more_processors_speed_up_cpu_bound_queries() {
        // The 1MONTH query is CPU-bound: doubling the nodes should cut the
        // response time roughly in half (Figure 4's message).
        let mut slow_cfg = SimConfig::for_speedup_point(20, 2);
        slow_cfg.disks = 20;
        let mut fast_cfg = SimConfig::for_speedup_point(20, 10);
        fast_cfg.disks = 20;
        let run = |cfg: SimConfig| {
            let (plan, layout) = build_plan(
                &cfg,
                &["time::month", "product::group"],
                QueryType::OneMonth,
                vec![5],
            );
            let engine = Engine::new(cfg, layout, vec![plan], 1);
            engine.run().0[0].response_ms
        };
        let slow = run(slow_cfg);
        let fast = run(fast_cfg);
        let speedup = slow / fast;
        assert!(
            speedup > 3.0,
            "speed-up {speedup} (slow {slow} ms, fast {fast} ms)"
        );
    }

    #[test]
    fn more_disks_speed_up_io_bound_queries() {
        // With only two disks the 1MONTH query (480 whole-fragment reads) is
        // disk-bound; adding disks must shorten it substantially until the
        // four CPUs become the bottleneck.
        let run = |disks: u64| {
            let cfg = SimConfig {
                disks,
                nodes: 4,
                subqueries_per_node: 4,
                ..SimConfig::default()
            };
            let (plan, layout) = build_plan(
                &cfg,
                &["time::month", "product::group"],
                QueryType::OneMonth,
                vec![5],
            );
            let engine = Engine::new(cfg, layout, vec![plan], 1);
            engine.run().0[0].response_ms
        };
        let few = run(2);
        let many = run(16);
        assert!(few / many > 1.5, "few {few} ms vs many {many} ms");
    }

    #[test]
    fn parallel_bitmap_io_is_not_slower_than_serial() {
        let run = |parallel: bool| {
            let cfg = SimConfig {
                disks: 20,
                nodes: 4,
                subqueries_per_node: 2,
                parallel_bitmap_io: parallel,
                ..SimConfig::default()
            };
            let (plan, layout) = build_plan(
                &cfg,
                &["time::month", "product::group"],
                QueryType::OneCodeOneQuarter,
                vec![100, 2],
            );
            let engine = Engine::new(cfg, layout, vec![plan], 1);
            engine.run().0[0].response_ms
        };
        let parallel = run(true);
        let serial = run(false);
        assert!(
            parallel <= serial + 1e-6,
            "parallel {parallel} vs serial {serial}"
        );
    }

    #[test]
    fn single_user_stream_runs_queries_back_to_back() {
        let config = small_config();
        let (plan1, layout) = build_plan(
            &config,
            &["time::month", "product::group"],
            QueryType::OneMonthOneGroup,
            vec![1, 1],
        );
        let (plan2, _) = build_plan(
            &config,
            &["time::month", "product::group"],
            QueryType::OneMonthOneGroup,
            vec![2, 2],
        );
        let engine = Engine::new(config, layout, vec![plan1, plan2], 1);
        let (metrics, _, _, simulated) = engine.run();
        assert_eq!(metrics.len(), 2);
        // Total simulated time covers both queries executed sequentially.
        assert!(simulated >= metrics[0].response_ms + metrics[1].response_ms - 1.0);
    }

    #[test]
    fn multi_user_stream_overlaps_queries() {
        let config = small_config();
        let build = |month: u64| {
            build_plan(
                &config,
                &["time::month", "product::group"],
                QueryType::OneMonthOneGroup,
                vec![month, 1],
            )
        };
        let (plan1, layout) = build(1);
        let (plan2, _) = build(2);
        let serial = Engine::new(config, layout, vec![plan1.clone(), plan2.clone()], 1);
        let (_, _, _, serial_time) = serial.run();
        let overlapped = Engine::new(config, layout, vec![plan1, plan2], 2);
        let (metrics, _, _, overlapped_time) = overlapped.run();
        assert_eq!(metrics.len(), 2);
        assert!(
            overlapped_time < serial_time,
            "{overlapped_time} vs {serial_time}"
        );
    }
}
