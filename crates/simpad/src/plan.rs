//! Query planning: turning a bound query into per-fragment subquery work.
//!
//! The coordinator "creates a task list of all subqueries to be performed,
//! each comprising one fact fragment and its associated bitmap fragments"
//! (§5).  [`plan_query`] computes that task list together with the physical
//! work each subquery entails: which disk holds the fact fragment, how many
//! prefetch-granule I/Os are needed, which bitmap fragments (on which disks)
//! must be read, and how many rows have to be extracted and aggregated.

use serde::{Deserialize, Serialize};

use allocation::PhysicalAllocation;
use bitmap::IndexCatalog;
use mdhf::{classify, Classification, Fragmentation};
use schema::{PageSizing, StarSchema};
use workload::BoundQuery;

use crate::config::SimConfig;

/// One bitmap fragment a subquery has to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitmapRead {
    /// Disk holding the bitmap fragment.
    pub disk: u64,
    /// Pages of the bitmap fragment.
    pub pages: u64,
    /// Index of the bitmap among the fragment's bitmaps (for disk-layout
    /// offsets).
    pub bitmap_index: u64,
}

/// The work of one subquery (one fact fragment plus its bitmap fragments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubqueryWork {
    /// The fact fragment processed by this subquery.
    pub fragment: u64,
    /// Disk holding the fact fragment.
    pub fact_disk: u64,
    /// Number of fact prefetch-granule I/O operations.
    pub fact_granules: u64,
    /// Pages transferred per fact granule.
    pub fact_pages_per_granule: u64,
    /// Total fact pages of the fragment (for track layout).
    pub fragment_pages: u64,
    /// Bitmap fragments to read before fact processing.
    pub bitmap_reads: Vec<BitmapRead>,
    /// Total bitmap pages read by this subquery.
    pub bitmap_pages: u64,
    /// Rows that must be extracted and aggregated.
    pub relevant_rows: u64,
}

impl SubqueryWork {
    /// Total pages this subquery transfers from disk.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.fact_granules * self.fact_pages_per_granule + self.bitmap_pages
    }
}

/// The complete plan of one query instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Query name (e.g. `"1STORE"`).
    pub query_name: String,
    /// Classification of the query under the fragmentation.
    pub classification: Classification,
    /// Subqueries in allocation order (the scheduler's task list is "sorted
    /// in the order in which the fragments were allocated to disks").
    pub subqueries: Vec<SubqueryWork>,
}

impl QueryPlan {
    /// Total pages transferred by all subqueries.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.subqueries.iter().map(SubqueryWork::total_pages).sum()
    }

    /// Number of subqueries (= fragments to process).
    #[must_use]
    pub fn subquery_count(&self) -> usize {
        self.subqueries.len()
    }
}

/// Builds the query plan for a bound query instance.
#[must_use]
pub fn plan_query(
    schema: &StarSchema,
    catalog: &IndexCatalog,
    fragmentation: &Fragmentation,
    allocation: &PhysicalAllocation,
    config: &SimConfig,
    bound: &BoundQuery,
) -> QueryPlan {
    let sizing = PageSizing::with_page_size(schema, config.page_size);
    let classification = classify(schema, fragmentation, bound.query());
    let fragments = bound.relevant_fragments(schema, fragmentation);

    let n = fragmentation.fragment_count();
    let rows_per_fragment = sizing.fact_rows() as f64 / n as f64;
    let rows_per_page = sizing.fact_tuples_per_page() as f64;
    let fragment_pages = (rows_per_fragment / rows_per_page).ceil().max(1.0) as u64;
    let granules_per_fragment = fragment_pages.div_ceil(config.fact_prefetch_pages).max(1);

    // Expected hits per relevant fragment (uniform-distribution assumption).
    let expected_hits = bound.query().expected_hits(schema);
    let hits_per_fragment = expected_hits / fragments.len().max(1) as f64;

    // Which bitmaps does each subquery consult, and how large is one bitmap
    // fragment?
    let bitmaps_per_fragment: u64 = classification
        .bitmap_requirements
        .iter()
        .map(|req| {
            catalog
                .spec(req.attr.dimension)
                .bitmaps_for_selection(req.attr.level)
        })
        .sum();
    let bitmap_fragment_pages = (sizing.bitmap_fragment_pages(n).ceil() as u64).max(1);

    // Fact granules actually read per fragment.
    let (fact_granules, relevant_rows) = if classification.needs_no_bitmaps() {
        // IOC1: the whole fragment is read and every row is relevant.
        (granules_per_fragment, rows_per_fragment.round() as u64)
    } else {
        // IOC2: only granules containing hits are read.
        let sel_in_fragment = (hits_per_fragment / rows_per_fragment).min(1.0);
        let rows_per_granule = rows_per_page * config.fact_prefetch_pages as f64;
        let p_hit = 1.0 - (1.0 - sel_in_fragment).powf(rows_per_granule);
        let granules = (granules_per_fragment as f64 * p_hit).ceil().max(1.0) as u64;
        (
            granules.min(granules_per_fragment),
            hits_per_fragment.ceil().max(1.0) as u64,
        )
    };

    let subqueries = fragments
        .iter()
        .map(|&fragment| {
            let fact_disk = allocation.fact_disk(fragment);
            let bitmap_reads = (0..bitmaps_per_fragment)
                .map(|b| BitmapRead {
                    disk: allocation.bitmap_disk(fragment, b),
                    pages: bitmap_fragment_pages,
                    bitmap_index: b,
                })
                .collect::<Vec<_>>();
            SubqueryWork {
                fragment,
                fact_disk,
                fact_granules,
                fact_pages_per_granule: config.fact_prefetch_pages,
                fragment_pages,
                bitmap_pages: bitmaps_per_fragment * bitmap_fragment_pages,
                bitmap_reads,
                relevant_rows,
            }
        })
        .collect();

    QueryPlan {
        query_name: bound.query().name().to_string(),
        classification,
        subqueries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;
    use workload::QueryType;

    fn setup() -> (
        StarSchema,
        IndexCatalog,
        Fragmentation,
        PhysicalAllocation,
        SimConfig,
    ) {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        let a = PhysicalAllocation::round_robin(100);
        (s, catalog, f, a, SimConfig::default())
    }

    fn bound(s: &StarSchema, qt: QueryType, values: Vec<u64>) -> BoundQuery {
        BoundQuery::new(s, qt.to_star_query(s), values)
    }

    #[test]
    fn one_month_plan_reads_whole_fragments_without_bitmaps() {
        let (s, catalog, f, a, c) = setup();
        let plan = plan_query(
            &s,
            &catalog,
            &f,
            &a,
            &c,
            &bound(&s, QueryType::OneMonth, vec![3]),
        );
        assert_eq!(plan.subquery_count(), 480);
        assert!(plan.classification.needs_no_bitmaps());
        for sq in &plan.subqueries {
            assert!(sq.bitmap_reads.is_empty());
            assert_eq!(sq.bitmap_pages, 0);
            // 162 000 rows / 204 rows per page = 795 pages → 100 granules.
            assert_eq!(sq.fragment_pages, 795);
            assert_eq!(sq.fact_granules, 100);
            assert_eq!(sq.relevant_rows, 162_000);
            assert!(sq.fact_disk < 100);
        }
    }

    #[test]
    fn one_store_plan_reads_12_bitmaps_per_fragment() {
        let (s, catalog, f, a, c) = setup();
        let plan = plan_query(
            &s,
            &catalog,
            &f,
            &a,
            &c,
            &bound(&s, QueryType::OneStore, vec![7]),
        );
        assert_eq!(plan.subquery_count(), 11_520);
        let sq = &plan.subqueries[0];
        assert_eq!(sq.bitmap_reads.len(), 12);
        // One bitmap fragment is 5 whole pages → 60 bitmap pages per subquery.
        assert_eq!(sq.bitmap_pages, 60);
        // Only a subset of the fragment's granules contains hits.
        assert!(sq.fact_granules < 100);
        assert!(sq.fact_granules > 30);
        // ~112 hit rows per fragment.
        assert!(sq.relevant_rows >= 112 && sq.relevant_rows <= 114);
        // Staggered placement: bitmap disks are the ones after the fact disk.
        for (i, b) in sq.bitmap_reads.iter().enumerate() {
            assert_eq!(b.disk, (sq.fact_disk + 1 + i as u64) % 100);
        }
    }

    #[test]
    fn one_code_one_quarter_plan_has_three_subqueries() {
        let (s, catalog, f, a, c) = setup();
        let plan = plan_query(
            &s,
            &catalog,
            &f,
            &a,
            &c,
            &bound(&s, QueryType::OneCodeOneQuarter, vec![65, 1]),
        );
        assert_eq!(plan.subquery_count(), 3);
        // Bitmap access for the product code: 15 encoded bitmaps.
        assert_eq!(plan.subqueries[0].bitmap_reads.len(), 15);
        assert_eq!(plan.query_name, "1CODE1QUARTER");
        assert!(plan.total_pages() > 0);
    }

    #[test]
    fn plan_total_pages_tracks_cost_model_shape() {
        // The simulator plan and the analytic cost model must agree on the
        // relative ordering of fragmentations (they share assumptions).
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let a = PhysicalAllocation::round_robin(100);
        let c = SimConfig::default();
        let q = bound(&s, QueryType::OneStore, vec![0]);
        let mut totals = Vec::new();
        for spec in ["product::group", "product::class", "product::code"] {
            let f = Fragmentation::parse(&s, &["time::month", spec]).unwrap();
            let plan = plan_query(&s, &catalog, &f, &a, &c, &q);
            totals.push(plan.total_pages());
        }
        // F_MonthCode is the worst for 1STORE (bitmap explosion).
        assert!(totals[2] > totals[0]);
    }

    #[test]
    fn colocated_allocation_places_bitmaps_on_fact_disk() {
        let (s, catalog, f, _, c) = setup();
        let a = PhysicalAllocation::round_robin_colocated(100);
        let plan = plan_query(
            &s,
            &catalog,
            &f,
            &a,
            &c,
            &bound(&s, QueryType::OneStore, vec![7]),
        );
        let sq = &plan.subqueries[42];
        for b in &sq.bitmap_reads {
            assert_eq!(b.disk, sq.fact_disk);
        }
    }
}
