//! Fragmentation advisor: apply the paper's §4.7 guidelines to a query mix.
//!
//! The advisor enumerates every candidate point fragmentation of the APB-1
//! schema, discards the ones that violate the §4.4 thresholds (minimum
//! bitmap-fragment size, maximum fragment count, maximum bitmaps, enough
//! fragments for all disks), evaluates the analytic I/O cost of the rest for
//! a weighted query mix and prints a ranked recommendation — the tool the
//! paper suggests a database administrator would use.
//!
//! Run with `cargo run --release --example fragmentation_advisor`.

use warehouse::prelude::*;

fn main() {
    let schema = schema::apb1::apb1_schema();

    // A query mix dominated by time/product analysis with occasional
    // store-level drill-downs.
    let mix: Vec<(StarQuery, f64)> = vec![
        (QueryType::OneMonthOneGroup.to_star_query(&schema), 4.0),
        (QueryType::OneMonth.to_star_query(&schema), 2.0),
        (QueryType::OneCode.to_star_query(&schema), 2.0),
        (QueryType::OneCodeOneQuarter.to_star_query(&schema), 2.0),
        (QueryType::OneStore.to_star_query(&schema), 1.0),
    ];

    let advisor = Advisor::new(
        schema.clone(),
        AdvisorConfig {
            top_k: 8,
            restrict_to_query_dimensions: true,
            ..AdvisorConfig::default()
        },
    );

    println!("Advisor input mix:");
    for (query, weight) in &mix {
        println!("  weight {weight:>4}  {}", query.name());
    }
    println!();

    let ranked = advisor.recommend(&mix, &[]);
    println!("Top fragmentation candidates (admissible under the §4.4 thresholds):");
    println!();
    println!(
        "{:>4}  {:<42} {:>12} {:>9} {:>16}",
        "rank", "fragmentation", "#fragments", "bitmaps", "mix I/O [pages]"
    );
    for (rank, candidate) in ranked.iter().enumerate() {
        println!(
            "{:>4}  {:<42} {:>12} {:>9} {:>16.0}",
            rank + 1,
            candidate.fragmentation.describe(&schema),
            candidate.fragments,
            candidate.bitmaps_required,
            candidate.total_pages
        );
    }

    // Now favour the store-level query and see how the recommendation shifts
    // towards fragmentations covering the CUSTOMER dimension.
    let favoured = vec![QueryType::OneStore.to_star_query(&schema)];
    let advisor_favoured = Advisor::new(
        schema.clone(),
        AdvisorConfig {
            top_k: 5,
            restrict_to_query_dimensions: false,
            ..AdvisorConfig::default()
        },
    );
    let ranked = advisor_favoured.recommend(&mix, &favoured);
    println!();
    println!("With 1STORE as a favoured query:");
    for (rank, candidate) in ranked.iter().enumerate() {
        println!(
            "{:>4}  {:<42} {:>12} favoured I/O {:>14.0} pages",
            rank + 1,
            candidate.fragmentation.describe(&schema),
            candidate.fragments,
            candidate.favoured_pages
        );
    }
}
