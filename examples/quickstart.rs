//! Quickstart: fragment the APB-1 star schema, classify queries, estimate
//! their I/O and simulate one of them.
//!
//! Run with `cargo run --release --example quickstart`.

use warehouse::prelude::*;

fn main() {
    // 1. The APB-1 star schema of the paper: SALES fact table with
    //    1 866 240 000 rows and the PRODUCT / CUSTOMER / CHANNEL / TIME
    //    dimensions.
    let schema = schema::apb1::apb1_schema();
    println!(
        "APB-1 schema: {} fact rows ({:.1} GB), {} dimensions",
        schema.fact_row_count(),
        schema.fact_table_bytes() as f64 / 1e9,
        schema.dimension_count()
    );

    // 2. Choose the paper's fragmentation F_MonthGroup = {time::month,
    //    product::group}: 24 x 480 = 11 520 fragments.
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    println!(
        "Fragmentation {} -> {} fragments",
        fragmentation.describe(&schema),
        fragmentation.fragment_count()
    );

    // 3. The default bitmap-index catalog: encoded indices on PRODUCT and
    //    CUSTOMER, simple ones on TIME and CHANNEL (76 bitmaps in total,
    //    32 remaining under this fragmentation).
    let catalog = IndexCatalog::default_for(&schema);
    println!(
        "Bitmaps: {} total, {} still needed under the fragmentation",
        catalog.total_bitmaps(),
        catalog.total_bitmaps_under_fragmentation(
            &fragmentation
                .attrs()
                .iter()
                .map(|a| (a.dimension, a.level))
                .collect::<Vec<_>>()
        )
    );

    // 4. Classify a few star queries under the fragmentation and estimate
    //    their I/O with the analytic cost model.
    let model = CostModel::new(schema.clone(), catalog);
    println!();
    println!("Query classification and analytic I/O estimates:");
    for query_type in QueryType::standard_mix() {
        let query = query_type.to_star_query(&schema);
        let (classification, cost) = model.evaluate(&fragmentation, &query);
        println!(
            "  {:14} -> {:?} / {:?}, {} fragments, {:.0} MB I/O",
            query.name(),
            classification.query_class,
            classification.io_class,
            classification.fragments_to_process,
            cost.total_megabytes(4_096)
        );
    }

    // 5. Simulate the 1MONTH1GROUP query on a small Shared Disk configuration
    //    (the full hardware sweeps live in the `bench` crate's binaries).
    let config = SimConfig {
        disks: 20,
        nodes: 4,
        subqueries_per_node: 4,
        ..SimConfig::default()
    };
    let setup = ExperimentSetup::new(
        schema,
        fragmentation,
        config,
        QueryType::OneMonthOneGroup,
        3,
    );
    let summary = run_experiment(&setup);
    println!();
    println!(
        "Simulated 1MONTH1GROUP on {} disks / {} nodes: mean response {:.2} s over {} queries",
        summary.disks,
        summary.nodes,
        summary.mean_response_secs(),
        summary.queries.len()
    );
}
