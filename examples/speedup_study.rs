//! Speed-up study: a condensed version of the paper's Figure 3 / Figure 4
//! experiments on a reduced hardware grid.
//!
//! Simulates the disk-bound 1STORE query and the CPU-bound 1MONTH query under
//! `F_MonthGroup` for a few disk/processor combinations and prints response
//! times and speed-ups.  The full Table 5 grid is produced by the `bench`
//! crate binaries `fig3_speedup_1store` and `fig4_speedup_1month`.
//!
//! Run with `cargo run --release --example speedup_study`.

use warehouse::prelude::*;

fn run(
    schema: &StarSchema,
    fragmentation: &Fragmentation,
    disks: u64,
    nodes: usize,
    query_type: QueryType,
) -> f64 {
    let config = SimConfig::for_speedup_point(disks, nodes);
    let setup = ExperimentSetup::new(schema.clone(), fragmentation.clone(), config, query_type, 1);
    run_experiment(&setup).mean_response_secs()
}

fn main() {
    let schema = schema::apb1::apb1_schema();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");

    // Disk-bound query: vary the number of disks at p = d/4.
    println!("1STORE (disk-bound, not supported by the fragmentation):");
    let mut baseline = None;
    for disks in [20u64, 60, 100] {
        let nodes = (disks / 4) as usize;
        let secs = run(&schema, &fragmentation, disks, nodes, QueryType::OneStore);
        let speedup = baseline.map_or(1.0, |b: f64| b / secs);
        baseline.get_or_insert(secs);
        println!("  d = {disks:>3}, p = {nodes:>2}: {secs:>8.1} s   speed-up {speedup:.2}");
    }

    // CPU-bound query: vary the number of processors at d = 60.
    println!();
    println!("1MONTH (CPU-bound, optimally supported by the fragmentation):");
    let mut baseline = None;
    for nodes in [3usize, 12, 30] {
        let secs = run(&schema, &fragmentation, 60, nodes, QueryType::OneMonth);
        let speedup = baseline.map_or(1.0, |b: f64| b / secs);
        baseline.get_or_insert(secs);
        println!("  d =  60, p = {nodes:>2}: {secs:>8.1} s   speed-up {speedup:.2}");
    }

    println!();
    println!(
        "Expected shape (paper, Figures 3 and 4): 1STORE scales with the number of \
         disks, 1MONTH with the number of processors; both close to linearly."
    );
}
