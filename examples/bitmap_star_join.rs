//! Bitmap star-join on a materialised (scaled-down) warehouse, executed
//! through the [`Warehouse`] session API's serial path.
//!
//! The full-size APB-1 fact table is never materialised — the simulator works
//! on cardinalities.  This example builds a scaled-down instance with real
//! data, partitions it under `F_MonthGroup` into a [`FragmentStore`] with
//! fragment-aligned bitmap join indices (§3.2/§4), and lets the
//! [`StarJoinEngine`] plan and execute star queries: MDHF fragment pruning,
//! bitmap-AND selection (compressed-domain WAH intersection where the
//! adaptive representation chose compression, in-place multi-way AND
//! otherwise) and aggregation.  Results are
//! cross-checked against a brute-force scan and against a multi-way
//! intersection over *global* (unfragmented) bitmap indices.
//!
//! Run with `cargo run --release --example bitmap_star_join`.

use warehouse::bitmap::{MaterialisedFactTable, MaterialisedIndex};
use warehouse::prelude::*;
use warehouse::workload::QueryType;

fn main() {
    // A small APB-1-shaped warehouse that fits in memory.
    let schema = schema::apb1::apb1_scaled_down();
    let table = MaterialisedFactTable::generate(&schema, 2024);
    println!(
        "Materialised scaled-down warehouse: {} fact rows (density {}%)",
        table.len(),
        schema.fact().density() * 100.0
    );

    // Partition it under the paper's standard fragmentation and build the
    // fragment-aligned bitmap join indices (encoded for PRODUCT, simple for
    // the small dimensions), as in §3.2/§4.
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let warehouse =
        Warehouse::in_memory(FragmentStore::from_table(&schema, &fragmentation, &table));
    let store = warehouse.source().as_memory().expect("in-memory warehouse");
    let session = warehouse.session().build();
    println!(
        "FragmentStore: {} fragments under {}, {:.1} rows/fragment on average",
        store.fragment_count(),
        fragmentation.describe(&schema),
        store.total_rows() as f64 / store.fragment_count() as f64,
    );
    for dimension in 0..schema.dimension_count() {
        println!(
            "  dimension {:9} -> {:2} bitmaps per fragment",
            schema.dimensions()[dimension].name(),
            store.catalog().spec(dimension).bitmap_count()
        );
    }

    // The adaptive representation layer: sparse simple-index bitmaps are
    // stored WAH-compressed, the ~50 %-density encoded bit slices stay
    // plain; the measured ratio feeds the compressed page sizing.
    let stats = store.index_stats();
    println!(
        "Index storage: {} bitmaps ({} WAH-compressed), {:.1} KiB stored vs {:.1} KiB verbatim ({:.2}x)",
        stats.bitmaps,
        stats.compressed,
        stats.size_bytes as f64 / 1024.0,
        stats.plain_size_bytes as f64 / 1024.0,
        stats.compression_ratio(),
    );

    // A 1MONTH1GROUP star query (month 3, product group 1): the MDHF planner
    // prunes it to a single fragment and needs no bitmap at all (IOC1-opt).
    let query = QueryType::OneMonthOneGroup.to_star_query(&schema);
    let bound = BoundQuery::new(&schema, query, vec![3, 1]);
    let plan = warehouse.plan(&bound);
    println!();
    println!(
        "1MONTH1GROUP plan: {} of {} fragments, {} bitmap predicate(s), {:?}",
        plan.fragments().len(),
        store.fragment_count(),
        plan.bitmap_predicates().len(),
        plan.classification().io_class,
    );
    let result = session.execute(&bound);
    println!(
        "1MONTH1GROUP result: {} hit rows, SUM(UnitsSold) = {}",
        result.hits, result.measure_sums[0]
    );

    // Cross-check against a brute-force scan of the unfragmented table.
    let product = schema.dimension_index("product").expect("product");
    let time = schema.dimension_index("time").expect("time");
    let group = schema.attr("product", "group").expect("group attr");
    let group_range = schema.dimensions()[product]
        .hierarchy()
        .leaf_range_of(group.level, 1);
    let mut predicates = vec![None, None, None, None];
    predicates[product] = Some(group_range);
    predicates[time] = Some(3..4);
    let scan_hits = table.scan(&predicates).len() as u64;
    println!("Brute-force scan agrees: {scan_hits} hit rows");
    assert_eq!(result.hits, scan_hits);

    // A query the fragmentation does not fully support: 1CODE1QUARTER keeps a
    // bitmap predicate for the product code (Q4, IOC2).
    let bound = BoundQuery::new(
        &schema,
        QueryType::OneCodeOneQuarter.to_star_query(&schema),
        vec![65, 2],
    );
    let plan = warehouse.plan(&bound);
    let result = session.execute(&bound);
    println!();
    println!(
        "1CODE1QUARTER plan: {} of {} fragments, {} bitmap predicate(s), {:?}",
        plan.fragments().len(),
        store.fragment_count(),
        plan.bitmap_predicates().len(),
        plan.classification().io_class,
    );
    println!(
        "1CODE1QUARTER result: {} hit rows, SUM(UnitsSold) = {}",
        result.hits, result.measure_sums[0]
    );

    // Cross-check via global (unfragmented) bitmap indices: one selection
    // bitmap per predicate, intersected with the multi-way Bitmap::and_many.
    let catalog = store.catalog().clone();
    let indices: Vec<MaterialisedIndex> = (0..schema.dimension_count())
        .map(|d| MaterialisedIndex::build(&schema, &catalog, &table, d))
        .collect();
    let selections: Vec<Bitmap> = bound
        .query()
        .predicates()
        .iter()
        .zip(bound.values())
        .map(|(pred, &value)| indices[pred.attr.dimension].select(pred.attr.level, value))
        .collect();
    let refs: Vec<&Bitmap> = selections.iter().collect();
    let global_hits = Bitmap::and_many(&refs).count_ones() as u64;
    println!("Global bitmap AND (and_many) agrees: {global_hits} hit rows");
    assert_eq!(result.hits, global_hits);
}
