//! Bitmap star-join on a materialised (scaled-down) warehouse.
//!
//! The full-size APB-1 fact table is never materialised — the simulator works
//! on cardinalities.  This example builds a scaled-down instance with real
//! data, constructs the hierarchically encoded bitmap join indices of §3.2,
//! executes a star query by AND-ing bitmaps, and cross-checks the result
//! against a brute-force scan.  It also shows the MDHF fragment pruning on
//! the same data.
//!
//! Run with `cargo run --release --example bitmap_star_join`.

use warehouse::bitmap::{evaluate_star_query, MaterialisedFactTable, MaterialisedIndex};
use warehouse::prelude::*;

fn main() {
    // A small APB-1-shaped warehouse that fits in memory.
    let schema = schema::apb1::apb1_scaled_down();
    let table = MaterialisedFactTable::generate(&schema, 2024);
    println!(
        "Materialised scaled-down warehouse: {} fact rows (density {}%)",
        table.len(),
        schema.fact().density() * 100.0
    );

    // Build one bitmap join index per dimension (encoded for PRODUCT, simple
    // for the small dimensions), as in §3.2.
    let catalog = IndexCatalog::default_for(&schema);
    let indices: Vec<MaterialisedIndex> = (0..schema.dimension_count())
        .map(|d| MaterialisedIndex::build(&schema, &catalog, &table, d))
        .collect();
    for index in &indices {
        println!(
            "  dimension {:9} -> {} bitmaps materialised",
            schema.dimensions()[index.dimension()].name(),
            index.materialised_bitmap_count()
        );
    }

    // A 1MONTH1GROUP-style star query: sum of UnitsSold for product group 1
    // in month 3, evaluated by intersecting bitmaps.
    let product = schema.dimension_index("product").expect("product");
    let time = schema.dimension_index("time").expect("time");
    let group = schema.attr("product", "group").expect("group attr");
    let month = schema.attr("time", "month").expect("month attr");
    let (hits, units_sold) = evaluate_star_query(
        &table,
        &indices,
        &[(product, group.level, 1), (time, month.level, 3)],
        0,
    );
    println!();
    println!("1MONTH1GROUP via bitmap AND: {hits} hit rows, SUM(UnitsSold) = {units_sold}");

    // Cross-check against a brute-force scan.
    let group_range = schema.dimensions()[product]
        .hierarchy()
        .leaf_range_of(group.level, 1);
    let mut predicates = vec![None, None, None, None];
    predicates[product] = Some(group_range);
    predicates[time] = Some(3..4);
    let scan_hits = table.scan(&predicates).len();
    println!("Brute-force scan agrees: {scan_hits} hit rows");
    assert_eq!(hits, scan_hits);

    // MDHF pruning on the same data: count how many fragments actually hold
    // the query's rows under F_MonthGroup.
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let mut touched = std::collections::BTreeSet::new();
    for row in table.rows() {
        let frag = fragmentation.fragment_of_row(&schema, &row.keys);
        let in_group = schema.dimensions()[product]
            .hierarchy()
            .ancestor_of_leaf(row.keys[product], group.level)
            == 1;
        if in_group && row.keys[time] == 3 {
            touched.insert(frag);
        }
    }
    println!(
        "MDHF pruning: the query's rows live in {} of {} fragments (paper: exactly 1 per month/group pair)",
        touched.len(),
        fragmentation.fragment_count()
    );
    assert!(touched.len() <= 1);
}
