//! Persistent warehouse: serialise a fragment store to an `FGMT` file and
//! query it back through the [`Warehouse`] session API.
//!
//! The other examples hold the materialised warehouse in memory.  This one
//! walks the persistent path end to end:
//!
//! 1. build a scaled-down APB-1 warehouse and save it with
//!    [`Warehouse::save`] — a page-aligned columnar file with
//!    BMRP-encoded bitmap index segments and per-segment checksums,
//! 2. reopen it with [`Warehouse::open`] (corruption and I/O failures
//!    surface as typed [`WarehouseError`]s, never panics),
//! 3. run the same queries over both backings and check the results are
//!    bit-identical,
//! 4. show the file-backed buffer pool warming up: the second pass is
//!    served from cache without touching the file,
//! 5. stream a small multi-query batch under an admission policy.
//!
//! Run with `cargo run --release --example persistent_warehouse`.

use warehouse::prelude::*;

fn main() -> Result<(), WarehouseError> {
    // 1. Build and save.  The scaled-down schema keeps the file small.
    let schema = schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let store = FragmentStore::build(&schema, &fragmentation, 2024);
    let in_memory = Warehouse::in_memory(store);

    let path = std::env::temp_dir().join(format!("warehouse_example_{}.fgmt", std::process::id()));
    in_memory.save(&path)?;
    let file_bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved {} rows in {} fragments to {} ({:.1} MiB)",
        in_memory.source().total_rows(),
        in_memory.source().fragment_count(),
        path.display(),
        file_bytes as f64 / (1024.0 * 1024.0),
    );

    // 2. Reopen.  `open` eagerly verifies the header, the page directory
    //    and every segment checksum before returning.
    let persistent = Warehouse::open(&path)?;

    // 3. Same queries, both backings, bit-identical results.
    let memory_session = in_memory.session().build();
    let file_session = persistent.session().workers(2).build();
    let query = BoundQuery::new(
        &schema,
        QueryType::OneMonthOneGroup.to_star_query(&schema),
        vec![3, 1],
    );
    let expected = memory_session.execute(&query);
    let result = file_session.execute(&query);
    assert_eq!(expected.hits, result.hits);
    assert_eq!(expected.measure_sums, result.measure_sums);
    println!(
        "1MONTH1GROUP: {} hit rows, SUM(UnitsSold) = {} — identical on both backings",
        result.hits, result.measure_sums[0]
    );

    // 4. The buffer pool warms up: re-running the query touches no pages.
    let cold = result.metrics.file.expect("file-backed metrics");
    let rerun = file_session.execute(&query);
    let warm = rerun.metrics.file.expect("file-backed metrics");
    println!(
        "cold pass: {} pages missed, {} bytes read; warm pass: {} further reads, \
         {} fetches straight from the decoded cache",
        cold.pool.misses,
        cold.bytes_read,
        warm.bytes_read - cold.bytes_read,
        warm.decoded_cache_hits - cold.decoded_cache_hits,
    );

    // 5. A concurrent stream over the file-backed warehouse.
    let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 7);
    let batch = generator.batch(8);
    let outcome = persistent
        .session()
        .workers(2)
        .policy(AdmissionPolicy::Concurrent { max_in_flight: 2 })
        .build()
        .stream(&batch);
    println!(
        "streamed {} queries at MPL 2: {:.0} queries/sec",
        batch.len(),
        outcome.metrics.queries_per_sec()
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
